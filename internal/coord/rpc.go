package coord

import (
	"time"

	"helios/internal/codec"
	"helios/internal/obs"
	"helios/internal/rpc"
)

// RPC surface of the coordinator. In a multi-process deployment the
// coordinator rides on the broker binary's RPC server, and every worker
// reports liveness over its existing (reconnecting) broker connection —
// so heartbeats heal across broker restarts exactly like the data path,
// and a worker that cannot reach the broker is, correctly, reported dead.

// MethodHeartbeat records one worker heartbeat.
const MethodHeartbeat = "coord.heartbeat"

// ServeRPC registers the coordinator's RPC surface on srv.
func ServeRPC(c *Coordinator, srv *rpc.Server) {
	srv.Handle(MethodHeartbeat, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		kind := WorkerKind(r.String())
		if err := r.Err(); err != nil {
			return nil, err
		}
		c.Heartbeat(name, kind)
		return nil, nil
	})
}

// RegisterMetrics publishes worker-liveness gauges on reg: the number of
// registered workers and how many have missed deadTimeout of heartbeats.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry, deadTimeout time.Duration) {
	reg.GaugeFunc("coord.workers", func() int64 {
		return int64(len(c.Workers()))
	})
	reg.GaugeFunc("coord.dead_workers", func() int64 {
		return int64(len(c.Dead(deadTimeout)))
	})
}

// Client reports heartbeats to a remote coordinator, typically over the
// same reconnecting RPC client the worker's RemoteBroker uses.
type Client struct {
	c       *rpc.Client
	timeout time.Duration
}

// NewClient wraps an established RPC client (shared with the broker
// connection). timeout 0 defaults to 5s.
func NewClient(c *rpc.Client, timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return &Client{c: c, timeout: timeout}
}

// Heartbeat reports liveness for the named worker.
func (hc *Client) Heartbeat(name string, kind WorkerKind) error {
	w := codec.NewWriter(32)
	w.String(name)
	w.String(string(kind))
	_, err := hc.c.Call(MethodHeartbeat, w.Bytes(), hc.timeout)
	return err
}
