package mq

import (
	"errors"
	"time"

	"helios/internal/rpc"
)

// Bus abstracts the broker so workers run identically against the
// in-process Broker (tests, benches, single-machine deployments) and the
// RemoteBroker RPC client (multi-process deployments, see remote.go).
type Bus interface {
	// OpenTopic creates or opens a topic with the given partition count.
	OpenTopic(name string, partitions int) (TopicHandle, error)
	// Close releases the connection (remote) or shuts the broker down
	// (local).
	Close() error
}

// TopicHandle is the per-topic surface workers program against.
type TopicHandle interface {
	Name() string
	NumPartitions() int
	Append(partition int, key uint64, value []byte) (int64, error)
	// AppendBatch appends recs to one partition as a single broker
	// operation — one lock pass locally, one RPC frame remotely — and
	// returns the offset of the first record; the batch lands contiguously
	// in slice order. Like Append, the broker takes ownership of every
	// Value slice. An empty batch is a no-op returning NextOffset.
	AppendBatch(partition int, recs []BatchRecord) (int64, error)
	AppendByKey(key uint64, value []byte) (int64, error)
	OpenConsumer(partition int, from int64) Cursor
	// NextOffset reports the offset the next append will get; Depth the
	// retained records of the partition.
	NextOffset(partition int) int64
	Depth(partition int) int64
	// EndOffset reports the log-end offset (== NextOffset, Kafka's LEO);
	// consumer lag is EndOffset - Cursor.Committed.
	EndOffset(partition int) int64
	// CommittedOffset reports the highest offset any consumer has pushed
	// back to the broker via Cursor.Commit for the partition, or -1 while
	// none has. This is the broker-side lag signal producers use for
	// backpressure without ever meeting the consumers.
	CommittedOffset(partition int) int64
}

// Cursor is an offset-tracked consumer of one partition.
type Cursor interface {
	Poll(max int, wait time.Duration) ([]Record, error)
	Offset() int64
	// Committed reports the offset of the next record to read (one past
	// the last delivered record) — Kafka's committed-offset convention.
	Committed() int64
	// Commit pushes the cursor's position back to the broker so
	// TopicHandle.CommittedOffset (and broker-side lag) reflect this
	// consumer's progress. Best-effort: consumers commit periodically, so
	// a failed commit only overstates lag until the next one lands.
	Commit() error
	SeekTo(offset int64)
	Lag() int64
}

// IsFatal reports whether a Bus error is terminal for a consumer loop:
// the local broker (or the worker's own client) was closed, i.e. this
// process is shutting down. Anything else — a dropped connection, a
// broker mid-restart, an injected fault — is transient: the reconnecting
// transport heals it, so poll loops should back off briefly and keep
// polling instead of dying.
func IsFatal(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, rpc.ErrClosed)
}

// Interface adapters for the concrete broker.

// OpenTopic implements Bus.
func (b *Broker) OpenTopic(name string, partitions int) (TopicHandle, error) {
	return b.CreateTopic(name, partitions)
}

// OpenConsumer implements TopicHandle.
func (t *Topic) OpenConsumer(partition int, from int64) Cursor {
	return t.NewConsumer(partition, from)
}

var (
	_ Bus         = (*Broker)(nil)
	_ TopicHandle = (*Topic)(nil)
	_ Cursor      = (*Consumer)(nil)
)
