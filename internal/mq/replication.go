package mq

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"helios/internal/codec"
	"helios/internal/faultpoint"
	"helios/internal/metrics"
	"helios/internal/rpc"
)

// Per-partition leader/follower replication (the broker half of the
// robustness story: ROADMAP item 4). Each partition of each topic has one
// leader among the R broker peers; the leader accepts appends, streams
// them to the R−1 followers over the existing rpc plumbing, and acks the
// producer only once a quorum (leader included) holds the bytes. Consumers
// only ever see records below the partition's high watermark — the offset
// up to which a quorum is known to hold everything — so a failover to the
// most-caught-up follower can never un-deliver a record a consumer already
// processed.
//
// Leadership is the versioned PartMap (partmap.go): partition % R by
// default, coordinator-published overrides after a failover. Brokers,
// producers and consumers all apply maps version-monotonically; a broker
// that learns (from a map push or from a replicate frame carrying a newer
// version) that it lost a partition truncates its unreplicated tail back
// to the high watermark and follows the new leader.

// ErrNotLeader reports an operation sent to a broker that does not lead
// the target partition under its current partition map. Retryable after
// re-resolving leadership (Cluster does this automatically); never fatal
// to a poll loop.
var ErrNotLeader = errors.New("mq: not leader")

// ErrQuorumUnavailable reports an append that could not reach its
// replication quorum before the leader's timeout. The record is NOT acked
// — producers should re-resolve leadership and retry; the append may
// surface later as a duplicate, which the §4.1 replay contract tolerates.
var ErrQuorumUnavailable = errors.New("mq: quorum unavailable")

// IsNotLeader reports whether err is a leadership rejection, including one
// that crossed an RPC hop as a RemoteError.
func IsNotLeader(err error) bool {
	if errors.Is(err, ErrNotLeader) {
		return true
	}
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "mq: not leader")
}

// IsQuorumUnavailable reports whether err is a quorum-timeout rejection,
// including one that crossed an RPC hop as a RemoteError.
func IsQuorumUnavailable(err error) bool {
	if errors.Is(err, ErrQuorumUnavailable) {
		return true
	}
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "mq: quorum unavailable")
}

// ReplicationConfig wires one broker into a replica set.
type ReplicationConfig struct {
	// Self is this broker's index into Peers.
	Self int
	// Peers lists every replica's RPC address, index-aligned across the
	// whole deployment (peer i of every broker is the same process).
	Peers []string
	// Quorum is how many replicas (leader included) must hold an append
	// before it is acked; 0 defaults to a majority (R/2 + 1).
	Quorum int
	// Timeout bounds one follower's whole replicate exchange (all gap-heal
	// frames included) and the leader's total wait for quorum acks; 0
	// defaults to 2s.
	Timeout time.Duration
	// After is the timer hook for the quorum wait; nil defaults to
	// time.After. Tests inject a manual channel to exercise the timeout
	// path without real sleeps.
	After func(d time.Duration) <-chan time.Time
}

// replicator is the leader-side fan-out engine plus the follower-offset
// bookkeeping behind the mq.replication_lag gauge.
type replicator struct {
	cfg ReplicationConfig

	mu      sync.Mutex
	clients []*rpc.Client             // index-aligned with cfg.Peers; nil at Self
	acked   map[int]map[PartKey]int64 // peer -> partition -> acked next offset

	// FollowerAcks counts successful follower replication acks
	// (mq.follower_acks).
	FollowerAcks metrics.Counter
}

// EnableReplication turns this broker into replica cfg.Self of an R-way
// set. Call it after NewBroker and before serving traffic; existing
// partitions get their high watermark pinned to their current end (a
// restarted replica trusts its own durable log and lets replication
// reconcile followers).
func (b *Broker) EnableReplication(cfg ReplicationConfig) error {
	if len(cfg.Peers) < 1 {
		return fmt.Errorf("mq: replication needs ≥ 1 peer, got %d", len(cfg.Peers))
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
		return fmt.Errorf("mq: replica index %d out of range [0, %d)", cfg.Self, len(cfg.Peers))
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = len(cfg.Peers)/2 + 1
	}
	if cfg.Quorum < 1 || cfg.Quorum > len(cfg.Peers) {
		return fmt.Errorf("mq: quorum %d out of range [1, %d]", cfg.Quorum, len(cfg.Peers))
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.After == nil {
		cfg.After = time.After
	}
	r := &replicator{cfg: cfg, acked: make(map[int]map[PartKey]int64)}
	r.clients = make([]*rpc.Client, len(cfg.Peers))
	for i, addr := range cfg.Peers {
		if i == cfg.Self {
			continue
		}
		// Reconnecting, no retry budget: the quorum wait is the retry
		// policy here — a failed send is a missing ack, and the next
		// append (or catch-up resend) re-issues the stream.
		c, err := rpc.DialOpts(addr, rpc.Options{Reconnect: true})
		if err != nil {
			return fmt.Errorf("mq: dial replica %d: %w", i, err)
		}
		r.clients[i] = c
	}
	b.mu.Lock()
	b.repl.Store(r)
	for _, t := range b.topics {
		for _, p := range t.parts {
			p.mu.Lock()
			p.hw = p.next
			p.mu.Unlock()
		}
	}
	b.mu.Unlock()
	return nil
}

// Replicated reports whether this broker runs as part of a replica set.
func (b *Broker) Replicated() bool { return b.repl.Load() != nil }

// replicatorRef returns the replication engine (nil when unreplicated).
// Lock-free: the field is write-once before the broker serves traffic.
func (b *Broker) replicatorRef() *replicator { return b.repl.Load() }

// PartMap returns the broker's current leadership view.
func (b *Broker) PartMap() PartMap {
	b.pmMu.RLock()
	defer b.pmMu.RUnlock()
	return b.pm.Clone()
}

// leaderFor resolves the current leader index for (topic, partition).
func (b *Broker) leaderFor(topic string, partition int) int {
	r := b.replicatorRef()
	if r == nil {
		return 0
	}
	b.pmMu.RLock()
	defer b.pmMu.RUnlock()
	return b.pm.Leader(topic, partition, len(r.cfg.Peers))
}

// checkLeader returns ErrNotLeader (wrapped with a leader hint) unless
// this broker leads (topic, partition). A nil replicator always passes —
// an unreplicated broker leads everything.
func (b *Broker) checkLeader(topic string, partition int) error {
	r := b.replicatorRef()
	if r == nil {
		return nil
	}
	if l := b.leaderFor(topic, partition); l != r.cfg.Self {
		return notLeaderError(topic, partition, l)
	}
	return nil
}

// ApplyPartMap adopts a coordinator-published leadership map if it is at
// least as new as the broker's current view. Partitions this broker just
// lost are truncated back to their high watermark (the unreplicated tail
// is abandoned — it was never acked to any producer at quorum); partitions
// it just gained expose their full log (hw = next: promotion happens only
// toward the most-caught-up replica, which holds every quorum-acked
// record).
func (b *Broker) ApplyPartMap(pm PartMap) bool {
	r := b.replicatorRef()
	if r == nil {
		return false
	}
	b.pmMu.Lock()
	if pm.Version < b.pm.Version {
		b.pmMu.Unlock()
		return false
	}
	old := b.pm
	b.pm = pm.Clone()
	b.pmMu.Unlock()

	b.mu.RLock()
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()
	peers := len(r.cfg.Peers)
	for _, t := range topics {
		for i, p := range t.parts {
			was := old.Leader(t.name, i, peers)
			now := pm.Leader(t.name, i, peers)
			if was == now {
				continue
			}
			if now == r.cfg.Self {
				p.promote()
			} else if was == r.cfg.Self {
				p.demote()
			}
		}
	}
	return true
}

// observeLeader handles the leadership hint carried by every replicate
// frame: a frame with a newer map version than ours proves the sender won
// a promotion we have not heard about yet, so we adopt the override (and
// demote ourselves if we thought we led the partition). Returns false when
// the frame itself is stale — its sender lost the partition.
func (b *Broker) observeLeader(topic string, partition int, leader int, version int64) bool {
	r := b.replicatorRef()
	if r == nil {
		return false
	}
	b.pmMu.Lock()
	if version < b.pm.Version {
		stale := b.pm.Leader(topic, partition, len(r.cfg.Peers)) != leader
		b.pmMu.Unlock()
		return !stale
	}
	wasSelf := b.pm.Leader(topic, partition, len(r.cfg.Peers)) == r.cfg.Self && leader != r.cfg.Self
	if version > b.pm.Version || b.pm.Leaders == nil {
		if b.pm.Leaders == nil {
			b.pm.Leaders = make(map[PartKey]int)
		}
		b.pm.Version = version
		b.pm.Leaders[PartKey{Topic: topic, Partition: partition}] = leader
	}
	b.pmMu.Unlock()
	if wasSelf {
		if t, ok := b.Topic(topic); ok && partition < len(t.parts) {
			t.parts[partition].demote()
		}
	}
	return true
}

// ReplOffsets snapshots every partition's replication offset, the payload
// of the broker's periodic replication-status report to the coordinator.
// Partitions this broker believes it leads report the high watermark (the
// quorum-acked position) rather than the raw log end — the un-acked tail
// is abandoned on demotion and must not inflate this replica's
// caught-up-ness in a failover comparison (see partition.reportOffset).
func (b *Broker) ReplOffsets() []ReplEntry {
	b.mu.RLock()
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()
	r := b.replicatorRef()
	var out []ReplEntry
	for _, t := range topics {
		for i, p := range t.parts {
			leading := r != nil && b.leaderFor(t.name, i) == r.cfg.Self
			out = append(out, ReplEntry{Topic: t.name, Partition: i, Next: p.reportOffset(leading)})
		}
	}
	return out
}

// replicate fans the records [first, first+n) of (t, part) out to every
// follower and blocks until quorum−1 of them ack (the leader's own copy is
// the quorum's first member), the timeout fires, or enough followers fail
// that quorum is unreachable. On success the partition's high watermark
// advances past the batch, making it visible to consumers.
func (r *replicator) replicate(t *Topic, part int, first int64, n int) error {
	end := first + int64(n)
	followers := len(r.cfg.Peers) - 1
	need := r.cfg.Quorum - 1
	if followers > 0 {
		acks := make(chan bool, followers)
		for peer := range r.cfg.Peers {
			if peer == r.cfg.Self {
				continue
			}
			go func(peer int) { acks <- r.sendTo(peer, t, part, first, end) }(peer)
		}
		if need > 0 {
			timeout := r.cfg.After(r.cfg.Timeout)
			got, failed := 0, 0
			for got < need {
				select {
				case ok := <-acks:
					if ok {
						got++
					} else if failed++; followers-failed < need-got {
						return fmt.Errorf("%w: %d/%d follower acks for %s/%d [%d,%d)",
							ErrQuorumUnavailable, got, need, t.name, part, first, end)
					}
				case <-timeout:
					return fmt.Errorf("%w: timeout with %d/%d follower acks for %s/%d [%d,%d)",
						ErrQuorumUnavailable, got, need, t.name, part, first, end)
				}
			}
		}
	}
	t.parts[part].advanceHW(end)
	return nil
}

// sendTo streams records to one follower until it acks end, healing offset
// gaps along the way: a follower that is behind (restarted, or missed a
// batch whose quorum was met without it) answers with its own next offset
// and the leader resends from there out of the retained window. Returns
// whether the follower acked everything up to end.
func (r *replicator) sendTo(peer int, t *Topic, part int, first, end int64) bool {
	from := first
	version, leader := t.broker.pmVersionLeader(t.name, part)
	// cfg.Timeout budgets the whole gap-healing exchange, not each frame:
	// the producer's quorum wait is armed with the same duration, so a slow
	// follower must be declared failed within it, not within a multiple.
	deadline := time.Now().Add(r.cfg.Timeout)
	for attempt := 0; attempt < 4; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		recs, ok := t.parts[part].readRange(from, end)
		if !ok {
			return false // rewound past retention; follower needs a snapshot we cannot serve
		}
		if err := faultpoint.Inject("mq.replicate.send"); err != nil {
			return false
		}
		frame := encodeReplicateFrame(version, leader, t.name, len(t.parts), part, from, recs)
		resp, err := r.client(peer).Call(MethodReplicate, frame, remaining)
		if err != nil {
			return false
		}
		status, next := decodeReplicateResp(resp)
		switch status {
		case replOK:
			if next < end {
				// Follower applied a prefix (concurrent frame landed
				// first); resend the rest.
				from = next
				continue
			}
			r.recordAck(peer, t.name, part, next)
			r.FollowerAcks.Inc()
			return true
		case replGap:
			if next >= end {
				// Another in-flight frame already delivered our range.
				r.recordAck(peer, t.name, part, next)
				r.FollowerAcks.Inc()
				return true
			}
			from = next
		default: // replStale: we lost leadership mid-send
			return false
		}
	}
	return false
}

func (b *Broker) pmVersionLeader(topic string, part int) (int64, int) {
	r := b.replicatorRef()
	b.pmMu.RLock()
	defer b.pmMu.RUnlock()
	peers := 0
	if r != nil {
		peers = len(r.cfg.Peers)
	}
	return b.pm.Version, b.pm.Leader(topic, part, peers)
}

func (r *replicator) client(peer int) *rpc.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clients[peer]
}

func (r *replicator) recordAck(peer int, topic string, part int, next int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.acked[peer]
	if m == nil {
		m = make(map[PartKey]int64)
		r.acked[peer] = m
	}
	k := PartKey{Topic: topic, Partition: part}
	if next > m[k] {
		m[k] = next
	}
}

// lag reports the replication lag of one partition from the leader's seat:
// its log end minus the slowest follower's acked offset (0 when this
// broker does not lead the partition). This is what the
// mq.replication_lag{topic,partition} gauge exports.
func (r *replicator) lag(t *Topic, part int) int64 {
	if t.broker.leaderFor(t.name, part) != r.cfg.Self {
		return 0
	}
	end := t.NextOffset(part)
	k := PartKey{Topic: t.name, Partition: part}
	r.mu.Lock()
	defer r.mu.Unlock()
	min := int64(0)
	first := true
	for peer := range r.cfg.Peers {
		if peer == r.cfg.Self {
			continue
		}
		a := r.acked[peer][k] // zero for a follower that never acked
		if first || a < min {
			min, first = a, false
		}
	}
	if first {
		return 0 // R=1: no followers, nothing can lag
	}
	return end - min
}

// close tears down the follower connections.
func (r *replicator) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		if c != nil {
			c.Close()
		}
	}
}

// Replicate-frame wire format. Records travel without their offsets —
// they are contiguous from `first` by construction, which is also what
// lets the follower enforce gap-free application.
const (
	replOK    = 0 // follower applied through `next`
	replGap   = 1 // frame starts past the follower's log end; resend from `next`
	replStale = 2 // frame's map version is older than the follower's
)

func encodeReplicateFrame(version int64, leader int, topic string, numParts, part int, first int64, recs []Record) []byte {
	size := 64
	for _, rec := range recs {
		size += 24 + len(rec.Value)
	}
	w := codec.NewWriter(size)
	w.Varint(version)
	w.Uvarint(uint64(leader))
	w.String(topic)
	w.Uvarint(uint64(numParts))
	w.Uvarint(uint64(part))
	w.Varint(first)
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		w.Uvarint(rec.Key)
		w.Varint(rec.Ts)
		w.Bytes32(rec.Value)
	}
	return w.Bytes()
}

func encodeReplicateResp(status byte, next int64) []byte {
	w := codec.NewWriter(12)
	w.Byte(status)
	w.Varint(next)
	return w.Bytes()
}

func decodeReplicateResp(buf []byte) (status byte, next int64) {
	r := codec.NewReader(buf)
	status = r.Byte()
	next = r.Varint()
	if r.Err() != nil {
		return replStale, 0
	}
	return status, next
}

// ServeReplication registers the follower-side replication surface on srv:
// mq.replicate applies leader streams, mq.lead adopts coordinator-pushed
// partition maps. Serve it alongside ServeBroker on every replica.
func ServeReplication(b *Broker, srv *rpc.Server) {
	srv.Handle(MethodReplicate, func(req []byte) ([]byte, error) {
		if err := faultpoint.Inject("mq.replicate.apply"); err != nil {
			return nil, err
		}
		r := codec.NewReader(req)
		version := r.Varint()
		leader := int(r.Uvarint())
		topic := r.String()
		numParts := int(r.Uvarint())
		part := int(r.Uvarint())
		first := r.Varint()
		n := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if n > r.Remaining() {
			return nil, codec.ErrShortBuffer
		}
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			rec := Record{Offset: first + int64(i), Key: r.Uvarint(), Ts: r.Varint()}
			val := r.Bytes32()
			v := make([]byte, len(val))
			copy(v, val)
			rec.Value = v
			recs = append(recs, rec)
		}
		if err := r.Finish(); err != nil {
			return nil, err
		}
		if !b.observeLeader(topic, part, leader, version) {
			return encodeReplicateResp(replStale, 0), nil
		}
		t, err := b.CreateTopic(topic, numParts)
		if err != nil {
			return nil, err
		}
		if part < 0 || part >= len(t.parts) {
			return nil, fmt.Errorf("mq: partition %d out of range", part)
		}
		next, applied, err := t.parts[part].appendAt(first, recs)
		if err != nil {
			return nil, err
		}
		if applied > 0 {
			b.Appended.Add(int64(applied))
		}
		status := byte(replOK)
		if next < first {
			status = replGap
		}
		return encodeReplicateResp(status, next), nil
	})
	srv.Handle(MethodLead, func(req []byte) ([]byte, error) {
		pm, err := DecodePartMap(req)
		if err != nil {
			return nil, err
		}
		b.ApplyPartMap(pm)
		return nil, nil
	})
}
