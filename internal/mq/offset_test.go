package mq

import "testing"

// TestOffsetSemantics pins the offset bookkeeping conventions so an
// off-by-one between "next offset" and "last delivered" cannot creep in:
// EndOffset is one past the last appended record (Kafka's LEO),
// Committed is one past the last delivered record, and lag is the plain
// difference of the two with no ±1 adjustment anywhere.
func TestOffsetSemantics(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Empty partition: everything is zero.
	if topic.EndOffset(0) != 0 || topic.NextOffset(0) != 0 {
		t.Fatalf("empty partition: EndOffset=%d NextOffset=%d, want 0/0",
			topic.EndOffset(0), topic.NextOffset(0))
	}
	c := topic.NewConsumer(0, 0)
	if c.Committed() != 0 || c.Lag() != 0 {
		t.Fatalf("empty partition: Committed=%d Lag=%d, want 0/0", c.Committed(), c.Lag())
	}

	// Append 5 records; offsets must be 0..4 and EndOffset 5.
	for i := 0; i < 5; i++ {
		off, err := topic.Append(0, uint64(i), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("append %d got offset %d", i, off)
		}
	}
	if topic.EndOffset(0) != 5 {
		t.Fatalf("EndOffset = %d after 5 appends, want 5", topic.EndOffset(0))
	}
	if c.Lag() != 5 {
		t.Fatalf("Lag = %d with nothing consumed, want 5", c.Lag())
	}

	// Deliver 3: committed must be one PAST the last delivered record.
	recs, err := c.Poll(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("polled %d records, want 3", len(recs))
	}
	last := recs[len(recs)-1].Offset
	if last != 2 {
		t.Fatalf("last delivered offset = %d, want 2", last)
	}
	if c.Committed() != last+1 {
		t.Fatalf("Committed = %d, want last delivered + 1 = %d (off-by-one)", c.Committed(), last+1)
	}
	if got := topic.EndOffset(0) - c.Committed(); got != 2 || c.Lag() != 2 {
		t.Fatalf("lag = EndOffset-Committed = %d, Lag() = %d, want 2/2", got, c.Lag())
	}

	// Drain: lag hits exactly zero (not -1 or 1), and a re-poll at the
	// committed offset returns nothing rather than redelivering.
	if recs, err = c.Poll(10, 0); err != nil || len(recs) != 2 {
		t.Fatalf("drain: %d records, err %v, want 2/nil", len(recs), err)
	}
	if c.Committed() != 5 || c.Lag() != 0 {
		t.Fatalf("drained: Committed=%d Lag=%d, want 5/0", c.Committed(), c.Lag())
	}
	if recs, err = c.Poll(10, 0); err != nil || len(recs) != 0 {
		t.Fatalf("poll past end redelivered %d records (err %v)", len(recs), err)
	}
	if c.Committed() != 5 {
		t.Fatalf("empty poll moved Committed to %d", c.Committed())
	}
}
