package mq

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"helios/internal/rpc"
)

// TestAppendBatchLocal checks the local batch append contract: records
// land contiguously in slice order, the first offset is returned, and a
// consumer reads them back byte-identical.
func TestAppendBatchLocal(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topic.Append(0, 0, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	recs := make([]BatchRecord, 5)
	for i := range recs {
		recs[i] = BatchRecord{Key: uint64(i), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	first, err := topic.AppendBatch(0, recs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first offset %d, want 1", first)
	}
	if topic.NextOffset(0) != 6 {
		t.Fatalf("next offset %d, want 6", topic.NextOffset(0))
	}
	cons := topic.NewConsumer(0, first)
	got, err := cons.Poll(10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("polled %d records, want 5", len(got))
	}
	for i, r := range got {
		if r.Offset != first+int64(i) || r.Key != uint64(i) || !bytes.Equal(r.Value, recs[i].Value) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

// TestAppendBatchEmpty checks the no-op contract: an empty batch appends
// nothing and reports the next offset.
func TestAppendBatchEmpty(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 1)
	topic.Append(0, 1, []byte("x"))
	off, err := topic.AppendBatch(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if off != 1 || topic.NextOffset(0) != 1 {
		t.Fatalf("empty batch: off=%d next=%d, want 1/1", off, topic.NextOffset(0))
	}
}

// TestAppendBatchRemote drives the batch through the RPC framing: one
// frame in, contiguous offsets out, values copied out of the frame
// buffer (the local broker takes ownership, so the remote handler must
// copy before the frame buffer is recycled).
func TestAppendBatchRemote(t *testing.T) {
	local, rb, done := startRemote(t)
	defer done()
	rt, err := rb.OpenTopic("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []BatchRecord{
		{Key: 1, Value: []byte("a")},
		{Key: 2, Value: []byte("bb")},
		{Key: 3, Value: []byte("ccc")},
	}
	first, err := rt.AppendBatch(1, recs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first offset %d, want 0", first)
	}
	lt, ok := local.Topic("t")
	if !ok {
		t.Fatal("topic missing broker-side")
	}
	if lt.NextOffset(1) != 3 {
		t.Fatalf("broker next offset %d, want 3", lt.NextOffset(1))
	}
	cons := rt.OpenConsumer(1, 0)
	got, err := cons.Poll(10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[2].Value, []byte("ccc")) || got[2].Key != 3 {
		t.Fatalf("remote batch read back: %+v", got)
	}
	// Empty remote batch: no frame-level surprises, next offset reported.
	off, err := rt.AppendBatch(1, nil)
	if err != nil || off != 3 {
		t.Fatalf("empty remote batch: off=%d err=%v", off, err)
	}
}

// TestAppendBatchBrokerBound checks the broker-side batch cap: a batch
// above MaxAppendBatch is refused whole, at the cap it lands.
func TestAppendBatchBrokerBound(t *testing.T) {
	b := NewBroker(Options{MaxAppendBatch: 2})
	defer b.Close()
	srv := rpc.NewServer()
	ServeBroker(b, srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rb, err := DialBroker(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	rt, err := rb.OpenTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := []BatchRecord{{Value: []byte("a")}, {Value: []byte("b")}, {Value: []byte("c")}}
	if _, err := rt.AppendBatch(0, recs); err == nil {
		t.Fatal("batch above broker bound should be refused")
	}
	if _, err := rt.AppendBatch(0, recs[:2]); err != nil {
		t.Fatalf("batch at bound: %v", err)
	}
	lt, _ := b.Topic("t")
	if lt.NextOffset(0) != 2 {
		t.Fatalf("refused batch left partial records: next=%d", lt.NextOffset(0))
	}
}

