package mq

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"helios/internal/rpc"
)

func startRemote(t *testing.T) (*Broker, *RemoteBroker, func()) {
	t.Helper()
	b := NewBroker(Options{})
	srv := rpc.NewServer()
	ServeBroker(b, srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := DialBroker(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return b, rb, func() {
		rb.Close()
		srv.Close()
		b.Close()
	}
}

func TestRemoteOpenAppendPoll(t *testing.T) {
	_, rb, done := startRemote(t)
	defer done()
	topic, err := rb.OpenTopic("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if topic.Name() != "t" || topic.NumPartitions() != 2 {
		t.Fatal("remote topic shape")
	}
	for i := 0; i < 20; i++ {
		off, err := topic.Append(0, uint64(i), []byte{byte(i)})
		if err != nil || off != int64(i) {
			t.Fatalf("append %d: %d %v", i, off, err)
		}
	}
	c := topic.OpenConsumer(0, 0)
	var got []Record
	for len(got) < 20 {
		recs, err := c.Poll(7, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}
	for i, r := range got {
		if r.Offset != int64(i) || !bytes.Equal(r.Value, []byte{byte(i)}) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if c.Lag() != 0 {
		t.Fatalf("lag = %d", c.Lag())
	}
	if topic.NextOffset(0) != 20 || topic.Depth(0) != 20 {
		t.Fatal("meta wrong")
	}
}

func TestRemoteAppendByKeyAgreesWithLocal(t *testing.T) {
	b, rb, done := startRemote(t)
	defer done()
	remote, _ := rb.OpenTopic("t", 8)
	local, _ := b.Topic("t")
	for key := uint64(0); key < 100; key++ {
		if _, err := remote.AppendByKey(key, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Routing must match the local PartitionFor rule exactly.
	for key := uint64(0); key < 100; key++ {
		p := local.PartitionFor(key)
		found := false
		c := local.NewConsumer(p, 0)
		recs, _ := c.Poll(1000, 0)
		for _, r := range recs {
			if r.Key == key {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d not in expected partition %d", key, p)
		}
	}
}

func TestRemoteLongPollWakeup(t *testing.T) {
	b, rb, done := startRemote(t)
	defer done()
	topic, _ := rb.OpenTopic("t", 1)
	c := topic.OpenConsumer(0, 0)
	got := make(chan []Record, 1)
	go func() {
		recs, _ := c.Poll(1, 3*time.Second)
		got <- recs
	}()
	time.Sleep(20 * time.Millisecond)
	lt, _ := b.Topic("t")
	lt.Append(0, 1, []byte("wake"))
	select {
	case recs := <-got:
		if len(recs) != 1 || !bytes.Equal(recs[0].Value, []byte("wake")) {
			t.Fatalf("recs = %v", recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long poll did not wake")
	}
}

func TestRemotePollTimeout(t *testing.T) {
	_, rb, done := startRemote(t)
	defer done()
	topic, _ := rb.OpenTopic("t", 1)
	c := topic.OpenConsumer(0, 0)
	start := time.Now()
	recs, err := c.Poll(1, 50*time.Millisecond)
	if err != nil || len(recs) != 0 {
		t.Fatalf("%v %v", recs, err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

func TestRemoteSeekAndOffset(t *testing.T) {
	_, rb, done := startRemote(t)
	defer done()
	topic, _ := rb.OpenTopic("t", 1)
	for i := 0; i < 10; i++ {
		topic.Append(0, 0, []byte{byte(i)})
	}
	c := topic.OpenConsumer(0, 0)
	c.SeekTo(6)
	recs, err := c.Poll(10, 0)
	if err != nil || len(recs) != 4 || recs[0].Offset != 6 {
		t.Fatalf("seek poll: %v %v", recs, err)
	}
	if c.Offset() != 10 {
		t.Fatalf("offset = %d", c.Offset())
	}
}

func TestRemoteUnknownTopicErrors(t *testing.T) {
	_, rb, done := startRemote(t)
	defer done()
	phantom := &RemoteTopic{broker: rb, name: "ghost", parts: 1}
	if _, err := phantom.Append(0, 0, nil); err == nil {
		t.Fatal("append to unknown topic should fail")
	}
	c := phantom.OpenConsumer(0, 0)
	if _, err := c.Poll(1, 0); err == nil {
		t.Fatal("poll of unknown topic should fail")
	}
}

func TestRemoteConcurrentProducers(t *testing.T) {
	_, rb, done := startRemote(t)
	defer done()
	topic, _ := rb.OpenTopic("t", 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := topic.AppendByKey(uint64(id*1000+i), []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for p := 0; p < 4; p++ {
		total += topic.Depth(p)
	}
	if total != 800 {
		t.Fatalf("total = %d", total)
	}
}
