// Package mq implements the durable partitioned log broker Helios uses to
// decouple its stages (§4.1 uses Kafka for the same role): graph updates
// flow through an input topic partitioned across sampling workers, sampled
// results flow through per-serving-worker sample queues, and subscription
// deltas flow through a topic partitioned across sampling workers.
//
// The broker provides the Kafka subset the system depends on: named topics
// with a fixed partition count, strictly ordered append-only partitions,
// offset-addressed blocking fetches, key-hash routing, bounded retention,
// and optional disk segments for durability.
package mq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"strconv"
	"strings"

	"helios/internal/faultpoint"
	"helios/internal/graph"
	"helios/internal/metrics"
	"helios/internal/obs"
	"helios/internal/rpc"
)

// ErrClosed reports use of a closed broker or partition.
var ErrClosed = errors.New("mq: closed")

// ErrBackpressure reports an append rejected because consumer lag on the
// target partition exceeds the topic's configured bound (SetLagBound):
// the producers are outrunning the consumers, and growing the log further
// would only grow staleness. Producers should slow down and retry; the
// condition clears as consumers catch up and commit.
var ErrBackpressure = errors.New("mq: backpressure: consumer lag bound exceeded")

// IsBackpressure reports whether err is a lag-bound rejection, including
// one that crossed an RPC hop as a RemoteError.
func IsBackpressure(err error) bool {
	if errors.Is(err, ErrBackpressure) {
		return true
	}
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "mq: backpressure")
}

// Record is one log entry.
type Record struct {
	// Offset is the record's position in its partition, starting at 0.
	Offset int64
	// Key carries the routing key (typically a vertex ID).
	Key uint64
	// Value is the payload. Consumers must treat it as read-only.
	Value []byte
	// Ts is the append wall-clock time in nanoseconds.
	Ts int64
}

// FsyncPolicy decides when segment bytes are fsynced relative to the
// append ack. Whatever the policy, segment bytes are always *written*
// before a record becomes visible to consumers; the policy only controls
// how much of the OS page cache a power loss may take with it.
type FsyncPolicy int

const (
	// FsyncInterval (the default) fsyncs every SyncEvery appends — the
	// historical behavior: an ack means the bytes reached the page cache,
	// and a power loss can lose up to SyncEvery acked records (a process
	// crash alone loses nothing; the cache survives it).
	FsyncInterval FsyncPolicy = iota
	// FsyncNever leaves durability to the OS and segment close.
	FsyncNever
	// FsyncAlways fsyncs before every append ack: an acked offset is on
	// disk, full stop. This is what the replication quorum path wants —
	// a quorum member's ack must survive its own power loss.
	FsyncAlways
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, bool) {
	switch s {
	case "interval", "":
		return FsyncInterval, true
	case "never":
		return FsyncNever, true
	case "always":
		return FsyncAlways, true
	}
	return FsyncInterval, false
}

// String returns the flag spelling of the policy.
func (f FsyncPolicy) String() string {
	switch f {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	}
	return "interval"
}

// Options configures a broker.
type Options struct {
	// Dir enables disk segments under the given directory; empty keeps the
	// broker memory-only (the default for tests and benches).
	Dir string
	// RetainRecords bounds the records kept per partition; 0 means
	// unbounded. Consumers fetching below the retained head are snapped
	// forward to it (matching Kafka's earliest-offset reset).
	RetainRecords int
	// SyncEvery fsyncs disk segments after this many appends under the
	// FsyncInterval policy; 0 defaults to 4096. Ignored for memory-only
	// brokers.
	SyncEvery int
	// Fsync selects the durability-vs-latency point for segment appends;
	// the zero value is FsyncInterval. Ignored for memory-only brokers.
	Fsync FsyncPolicy
	// MaxAppendBatch caps the records one remote AppendBatch frame may
	// carry (a bound on per-frame memory, not a local-API restriction);
	// 0 defaults to 4096. Binaries set it via -batch-max.
	MaxAppendBatch int
}

// Broker owns a set of topics.
type Broker struct {
	mu        sync.RWMutex
	opts      Options
	topics    map[string]*Topic
	lagBounds map[string]int64 // topic name -> lag bound for topics created later
	closed    bool

	// repl is the replication engine, write-once via EnableReplication
	// before the broker serves traffic; nil on an unreplicated broker.
	// Atomic so hot paths read it without touching b.mu.
	repl atomic.Pointer[replicator]
	// pm is the broker's current leadership view, version-gated by
	// ApplyPartMap. Guarded by pmMu, not b.mu, so map refreshes never
	// contend with topic lookups.
	pmMu sync.RWMutex
	pm   PartMap

	// Appended counts records accepted across all topics.
	Appended metrics.Counter
	// Fetched counts records delivered to consumers.
	Fetched metrics.Counter

	// reg, once set by RegisterMetrics, receives per-partition end-offset
	// gauges for every topic, including ones created later.
	reg *obs.Registry
	// stAppend/stFetch time the broker legs of the update path once
	// RegisterMetrics resolves them; nil until then (benches and tests that
	// never register pay nothing). Atomic because appends and polls race a
	// late RegisterMetrics.
	stAppend atomic.Pointer[obs.Histogram]
	stFetch  atomic.Pointer[obs.Histogram]
}

// NewBroker returns an empty broker.
func NewBroker(opts Options) *Broker {
	if opts.SyncEvery == 0 {
		opts.SyncEvery = 4096
	}
	if opts.MaxAppendBatch == 0 {
		opts.MaxAppendBatch = 4096
	}
	return &Broker{opts: opts, topics: make(map[string]*Topic), lagBounds: make(map[string]int64)}
}

// CreateTopic creates a topic with the given partition count, or returns
// the existing topic if the partition count matches.
func (b *Broker) CreateTopic(name string, partitions int) (*Topic, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("mq: topic %q needs ≥ 1 partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if t, ok := b.topics[name]; ok {
		if len(t.parts) != partitions {
			return nil, fmt.Errorf("mq: topic %q exists with %d partitions", name, len(t.parts))
		}
		return t, nil
	}
	t := &Topic{name: name, broker: b}
	t.lagBound.Store(b.lagBounds[name])
	for i := 0; i < partitions; i++ {
		p := newPartition(b, name, i)
		if b.opts.Dir != "" {
			if err := p.openSegment(b.opts.Dir); err != nil {
				return nil, err
			}
		}
		if b.repl.Load() != nil {
			// Replicated broker: pin the high watermark at the replayed
			// end — a replica trusts its own durable log and lets the
			// replication stream reconcile divergence (see demote).
			p.hw = p.next
		}
		t.parts = append(t.parts, p)
	}
	b.topics[name] = t
	if b.reg != nil {
		registerTopicGauges(b.reg, t)
	}
	return t, nil
}

// RegisterMetrics bridges the broker's counters into reg and publishes a
// per-partition log-end-offset gauge for every topic (current and future),
// so consumer lag is computable from any scrape.
func (b *Broker) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("mq.appended", b.Appended.Value)
	reg.CounterFunc("mq.fetched", b.Fetched.Value)
	// Follower replication acks, 0 until EnableReplication (registration
	// order with enabling is a deployment detail; the closure re-resolves).
	reg.CounterFunc("mq.follower_acks", func() int64 {
		if r := b.replicatorRef(); r != nil {
			return r.FollowerAcks.Value()
		}
		return 0
	})
	b.mu.Lock()
	b.reg = reg
	b.stAppend.Store(reg.Stage(obs.StageMQAppend))
	b.stFetch.Store(reg.Stage(obs.StageMQFetch))
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	for _, t := range topics {
		registerTopicGauges(reg, t)
	}
}

func registerTopicGauges(reg *obs.Registry, t *Topic) {
	for i := range t.parts {
		part := i
		reg.GaugeFunc("mq.end_offset",
			func() int64 { return t.NextOffset(part) },
			"topic", t.name, "partition", strconv.Itoa(part))
		reg.GaugeFunc("mq.committed_offset",
			func() int64 { return t.CommittedOffset(part) },
			"topic", t.name, "partition", strconv.Itoa(part))
		// Broker-side view of consumer lag: 0 until the first commit.
		reg.GaugeFunc("mq.broker_lag",
			func() int64 {
				c := t.CommittedOffset(part)
				if c < 0 {
					return 0
				}
				return t.EndOffset(part) - c
			},
			"topic", t.name, "partition", strconv.Itoa(part))
		// Replication lag from the leader's seat: log end minus the
		// slowest follower's acked offset; 0 on an unreplicated broker or
		// for partitions this broker does not lead.
		reg.GaugeFunc("mq.replication_lag",
			func() int64 {
				if r := t.broker.replicatorRef(); r != nil {
					return r.lag(t, part)
				}
				return 0
			},
			"topic", t.name, "partition", strconv.Itoa(part))
	}
}

// Topic returns a topic by name.
func (b *Broker) Topic(name string) (*Topic, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	return t, ok
}

// Topics returns the topic names.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Close shuts the broker down, waking all blocked consumers with ErrClosed
// and closing disk segments.
func (b *Broker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	var firstErr error
	for _, t := range b.topics {
		for _, p := range t.parts {
			if err := p.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if r := b.repl.Load(); r != nil {
		r.close()
	}
	return firstErr
}

// SetLagBound configures ingestion backpressure for a topic: once any
// partition's broker-side consumer lag (EndOffset - committed offset)
// reaches bound, appends to that partition fail with ErrBackpressure until
// consumers catch up and commit. A bound of 0 disables the check. The bound
// applies immediately to an existing topic and is remembered for a topic
// created later (a restarted broker re-creates topics on demand).
// Partitions that have never seen a commit are exempt — with no consumer
// there is no lag signal, only depth.
func (b *Broker) SetLagBound(topic string, bound int64) {
	if bound < 0 {
		bound = 0
	}
	b.mu.Lock()
	b.lagBounds[topic] = bound
	t := b.topics[topic]
	b.mu.Unlock()
	if t != nil {
		t.lagBound.Store(bound)
	}
}

// Topic is a named, fixed-partition-count log.
type Topic struct {
	name     string
	broker   *Broker
	parts    []*partition
	lagBound atomic.Int64 // max broker-side consumer lag before appends shed
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// NumPartitions returns the partition count.
func (t *Topic) NumPartitions() int { return len(t.parts) }

// Append appends value to an explicit partition and returns its offset.
func (t *Topic) Append(partitionIdx int, key uint64, value []byte) (int64, error) {
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, fmt.Errorf("mq: partition %d out of range for topic %q", partitionIdx, t.name)
	}
	if st := t.broker.stAppend.Load(); st != nil {
		start := time.Now()
		defer func() { st.Observe(time.Since(start).Nanoseconds(), 0) }()
	}
	if err := faultpoint.Inject("mq.append"); err != nil {
		return 0, err
	}
	if err := t.broker.checkLeader(t.name, partitionIdx); err != nil {
		return 0, err
	}
	if bound := t.lagBound.Load(); bound > 0 {
		p := t.parts[partitionIdx]
		p.mu.Lock()
		lagged := p.committed >= 0 && p.next-p.committed >= bound
		p.mu.Unlock()
		if lagged {
			return 0, ErrBackpressure
		}
	}
	off, err := t.parts[partitionIdx].append(key, value)
	if err != nil {
		return 0, err
	}
	t.broker.Appended.Inc()
	if r := t.broker.replicatorRef(); r != nil {
		// The quorum wait happens outside every lock; a failed quorum
		// leaves the record durable locally but unacked — the producer
		// retries, and followers (or a demotion) reconcile the offset.
		if err := r.replicate(t, partitionIdx, off, 1); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// BatchRecord is one (key, value) pair of an AppendBatch call. The broker
// takes ownership of Value, exactly as Append does; the containing slice
// stays the caller's and may be reused after the call returns.
type BatchRecord struct {
	Key   uint64
	Value []byte
}

// AppendBatch appends recs to one partition under a single partition lock
// pass — one backpressure check, one broadcast — and returns the first
// record's offset. The records land contiguously in slice order, so the
// batch occupies [first, first+len(recs)).
func (t *Topic) AppendBatch(partitionIdx int, recs []BatchRecord) (int64, error) {
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, fmt.Errorf("mq: partition %d out of range for topic %q", partitionIdx, t.name)
	}
	if len(recs) == 0 {
		return t.NextOffset(partitionIdx), nil
	}
	if st := t.broker.stAppend.Load(); st != nil {
		start := time.Now()
		defer func() { st.Observe(time.Since(start).Nanoseconds(), 0) }()
	}
	if err := faultpoint.Inject("mq.append"); err != nil {
		return 0, err
	}
	if err := t.broker.checkLeader(t.name, partitionIdx); err != nil {
		return 0, err
	}
	// One admission decision for the whole batch: the lag bound is a
	// coarse staleness valve, not an exact quota, so a batch is either
	// wholly accepted or wholly shed (partial appends would leave the
	// producer guessing which records landed).
	if bound := t.lagBound.Load(); bound > 0 {
		p := t.parts[partitionIdx]
		p.mu.Lock()
		lagged := p.committed >= 0 && p.next-p.committed >= bound
		p.mu.Unlock()
		if lagged {
			return 0, ErrBackpressure
		}
	}
	off, err := t.parts[partitionIdx].appendBatch(recs)
	if err != nil {
		return 0, err
	}
	t.broker.Appended.Add(int64(len(recs)))
	if r := t.broker.replicatorRef(); r != nil {
		// Quorum-gate the whole batch as one unit (it landed contiguously
		// at [off, off+len)); see Append for the failed-quorum contract.
		if err := r.replicate(t, partitionIdx, off, len(recs)); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// AppendByKey routes value to the partition owning key (same hash as the
// graph partitioner so workers and the broker agree on ownership).
func (t *Topic) AppendByKey(key uint64, value []byte) (int64, error) {
	return t.Append(int(hashPartition(key, len(t.parts))), key, value)
}

// PartitionFor returns the partition index AppendByKey would route key to.
func (t *Topic) PartitionFor(key uint64) int {
	return int(hashPartition(key, len(t.parts)))
}

// hashPartition is the key→partition rule shared by local and remote
// brokers (and by the graph partitioner, so ownership always agrees).
func hashPartition(key uint64, parts int) uint64 {
	return graph.Hash64(key) % uint64(parts)
}

// Depth returns the number of retained records in a partition (for
// backpressure metrics and tests).
func (t *Topic) Depth(partitionIdx int) int64 {
	p := t.parts[partitionIdx]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next - p.head
}

// NextOffset returns the offset the next append to the partition will get.
func (t *Topic) NextOffset(partitionIdx int) int64 {
	p := t.parts[partitionIdx]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// EndOffset returns the partition's log-end offset: one past the last
// appended record (Kafka's LEO). It equals NextOffset and exists so lag
// computations — EndOffset minus a consumer's Committed offset — read as
// the standard formula without reaching into broker internals. For an
// empty partition both are 0, and for a partition holding offsets
// [0, n) both are n; the last *delivered* record has offset EndOffset-1.
func (t *Topic) EndOffset(partitionIdx int) int64 {
	return t.NextOffset(partitionIdx)
}

// Commit records a consumer's progress on a partition: offset is one past
// the last processed record (Kafka's committed-offset convention). Commits
// only move forward; a stale or duplicate commit is ignored. This is what
// makes broker-side lag — and therefore ingestion backpressure — visible to
// producers that never meet the consumers.
func (t *Topic) Commit(partitionIdx int, offset int64) error {
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return fmt.Errorf("mq: partition %d out of range for topic %q", partitionIdx, t.name)
	}
	if err := t.broker.checkLeader(t.name, partitionIdx); err != nil {
		return err
	}
	p := t.parts[partitionIdx]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if offset > p.next {
		offset = p.next
	}
	if offset > p.committed {
		p.committed = offset
	}
	return nil
}

// CommittedOffset reports the highest committed offset for a partition, or
// -1 while no consumer has ever committed (lag unknown).
func (t *Topic) CommittedOffset(partitionIdx int) int64 {
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return -1
	}
	p := t.parts[partitionIdx]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed
}
