package mq

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCreateTopic(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("updates", 4)
	if err != nil {
		t.Fatal(err)
	}
	if topic.Name() != "updates" || topic.NumPartitions() != 4 {
		t.Fatal("topic shape wrong")
	}
	// Idempotent with matching partitions.
	again, err := b.CreateTopic("updates", 4)
	if err != nil || again != topic {
		t.Fatal("re-create should return the same topic")
	}
	if _, err := b.CreateTopic("updates", 8); err == nil {
		t.Fatal("partition mismatch should fail")
	}
	if _, err := b.CreateTopic("bad", 0); err == nil {
		t.Fatal("zero partitions should fail")
	}
	if _, ok := b.Topic("updates"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := b.Topic("missing"); ok {
		t.Fatal("missing topic should not resolve")
	}
	if names := b.Topics(); len(names) != 1 || names[0] != "updates" {
		t.Fatalf("Topics = %v", names)
	}
}

func TestAppendFetchOrdering(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 1)
	for i := 0; i < 100; i++ {
		off, err := topic.Append(0, uint64(i), []byte{byte(i)})
		if err != nil || off != int64(i) {
			t.Fatalf("append %d: off=%d err=%v", i, off, err)
		}
	}
	c := topic.NewConsumer(0, 0)
	var got []Record
	for len(got) < 100 {
		recs, err := c.Poll(7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatal("no records despite backlog")
		}
		got = append(got, recs...)
	}
	for i, r := range got {
		if r.Offset != int64(i) || r.Value[0] != byte(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
	if c.Lag() != 0 {
		t.Fatalf("lag = %d", c.Lag())
	}
}

func TestAppendByKeyRouting(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 8)
	for key := uint64(0); key < 1000; key++ {
		if _, err := topic.AppendByKey(key, nil); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for i := 0; i < 8; i++ {
		d := topic.Depth(i)
		if d == 0 {
			t.Fatalf("partition %d got nothing — bad key spread", i)
		}
		total += d
	}
	if total != 1000 {
		t.Fatalf("total = %d", total)
	}
	// Same key must always route to the same partition.
	p1, p2 := topic.PartitionFor(42), topic.PartitionFor(42)
	if p1 != p2 {
		t.Fatal("routing not deterministic")
	}
}

func TestBlockingPoll(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 1)
	c := topic.NewConsumer(0, 0)

	// Timeout path.
	start := time.Now()
	recs, err := c.Poll(1, 30*time.Millisecond)
	if err != nil || recs != nil {
		t.Fatalf("timeout poll: %v %v", recs, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("poll returned before timeout")
	}

	// Wakeup path.
	done := make(chan []Record, 1)
	go func() {
		r, _ := c.Poll(1, 2*time.Second)
		done <- r
	}()
	time.Sleep(10 * time.Millisecond)
	topic.Append(0, 1, []byte("x"))
	select {
	case r := <-done:
		if len(r) != 1 || !bytes.Equal(r[0].Value, []byte("x")) {
			t.Fatalf("woken poll got %v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("poll did not wake on append")
	}
}

func TestCloseWakesConsumers(t *testing.T) {
	b := NewBroker(Options{})
	topic, _ := b.CreateTopic("t", 1)
	c := topic.NewConsumer(0, 0)
	errs := make(chan error, 1)
	go func() {
		_, err := c.Poll(1, 10*time.Second)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errs:
		if err != ErrClosed {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not wake consumer")
	}
	if _, err := topic.Append(0, 1, nil); err != ErrClosed {
		t.Fatal("append after close should fail")
	}
	if _, err := b.CreateTopic("new", 1); err != ErrClosed {
		t.Fatal("create after close should fail")
	}
	if b.Close() != nil {
		t.Fatal("double close should be nil")
	}
}

func TestRetention(t *testing.T) {
	b := NewBroker(Options{RetainRecords: 10})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 1)
	for i := 0; i < 100; i++ {
		topic.Append(0, 0, []byte{byte(i)})
	}
	// Retention is amortized: the window stays within [retain, 2·retain].
	if d := topic.Depth(0); d < 10 || d > 20 {
		t.Fatalf("depth = %d, want within [10, 20]", d)
	}
	// A consumer behind the head snaps forward to the earliest retained,
	// and the newest record is always present.
	c := topic.NewConsumer(0, 0)
	recs, err := c.Poll(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != topic.Depth(0) {
		t.Fatalf("got %d records, depth %d", len(recs), topic.Depth(0))
	}
	if last := recs[len(recs)-1]; last.Offset != 99 || last.Value[0] != 99 {
		t.Fatalf("newest record wrong: %+v", last)
	}
	if recs[0].Offset < 80 {
		t.Fatalf("retained window too deep: starts at %d", recs[0].Offset)
	}
}

func TestAppendInvalidPartition(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 2)
	if _, err := topic.Append(5, 0, nil); err == nil {
		t.Fatal("out-of-range partition should fail")
	}
	if _, err := topic.Append(-1, 0, nil); err == nil {
		t.Fatal("negative partition should fail")
	}
}

func TestConsumerSeek(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		topic.Append(0, 0, []byte{byte(i)})
	}
	c := topic.NewConsumer(0, 0)
	c.SeekTo(7)
	recs, _ := c.Poll(10, 0)
	if len(recs) != 3 || recs[0].Offset != 7 {
		t.Fatalf("seek fetch: %v", recs)
	}
	if c.Offset() != 10 {
		t.Fatalf("offset = %d", c.Offset())
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, _ := b.CreateTopic("t", 4)
	const producers, perProducer = 4, 2000

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := topic.AppendByKey(uint64(id*perProducer+i), []byte{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(pr)
	}

	var consumed Counter
	var cwg sync.WaitGroup
	for p := 0; p < 4; p++ {
		cwg.Add(1)
		go func(part int) {
			defer cwg.Done()
			c := topic.NewConsumer(part, 0)
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				recs, err := c.Poll(256, 50*time.Millisecond)
				if err != nil {
					return
				}
				consumed.add(int64(len(recs)))
				if consumed.value() == producers*perProducer {
					return
				}
			}
		}(p)
	}
	wg.Wait()
	cwg.Wait()
	if consumed.value() != producers*perProducer {
		t.Fatalf("consumed %d of %d", consumed.value(), producers*perProducer)
	}
	if b.Appended.Value() != producers*perProducer {
		t.Fatalf("Appended = %d", b.Appended.Value())
	}
}

// Counter avoids importing sync/atomic repeatedly in the test.
type Counter struct {
	mu sync.Mutex
	n  int64
}

func (c *Counter) add(d int64) { c.mu.Lock(); c.n += d; c.mu.Unlock() }
func (c *Counter) value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func TestDiskDurability(t *testing.T) {
	dir := t.TempDir()
	b := NewBroker(Options{Dir: dir, SyncEvery: 1})
	topic, _ := b.CreateTopic("t", 2)
	for i := 0; i < 50; i++ {
		if _, err := topic.AppendByKey(uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: records must replay.
	b2 := NewBroker(Options{Dir: dir})
	defer b2.Close()
	topic2, err := b2.CreateTopic("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 2; p++ {
		c := topic2.NewConsumer(p, 0)
		recs, err := c.Poll(100, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}
	if total != 50 {
		t.Fatalf("replayed %d of 50", total)
	}
	// Appends continue from the replayed offset.
	off, err := topic2.Append(0, 0, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if off != topic2.NextOffset(0)-1 {
		t.Fatal("offset after replay wrong")
	}
}

func TestDiskTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	b := NewBroker(Options{Dir: dir, SyncEvery: 1})
	topic, _ := b.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		topic.Append(0, uint64(i), []byte("0123456789"))
	}
	b.Close()

	// Chop bytes off the tail to simulate a crash mid-write.
	path := segmentPath(dir, "t", 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	b2 := NewBroker(Options{Dir: dir})
	defer b2.Close()
	topic2, err := b2.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := topic2.NewConsumer(0, 0)
	recs, _ := c.Poll(100, 0)
	if len(recs) != 9 {
		t.Fatalf("expected 9 intact records, got %d", len(recs))
	}
}

func TestSegmentFilesCreated(t *testing.T) {
	dir := t.TempDir()
	b := NewBroker(Options{Dir: dir})
	if _, err := b.CreateTopic("x", 3); err != nil {
		t.Fatal(err)
	}
	b.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "x-*.log"))
	if len(files) != 3 {
		t.Fatalf("segment files = %v", files)
	}
}

func BenchmarkAppendByKey(b *testing.B) {
	br := NewBroker(Options{RetainRecords: 1 << 16})
	defer br.Close()
	topic, _ := br.CreateTopic("t", 8)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := uint64(0)
		for pb.Next() {
			topic.AppendByKey(key, payload)
			key++
		}
	})
}

func BenchmarkPollBatch(b *testing.B) {
	br := NewBroker(Options{})
	defer br.Close()
	topic, _ := br.CreateTopic("t", 1)
	payload := make([]byte, 64)
	for i := 0; i < 100000; i++ {
		topic.Append(0, 0, payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	c := topic.NewConsumer(0, 0)
	fetched := 0
	for i := 0; i < b.N; i++ {
		recs, _ := c.Poll(256, 0)
		fetched += len(recs)
		if len(recs) == 0 {
			c.SeekTo(0)
		}
	}
}
