package mq

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"helios/internal/codec"
	"helios/internal/rpc"
)

// Cluster is a Bus over a replicated broker set: every operation routes to
// the current leader of its target partition, and on ErrNotLeader or a
// transport failure the client refreshes the coordinator's versioned
// partition map and retries against the new leader — in-flight work rides
// out a failover instead of being dropped. It is the multi-broker
// counterpart of RemoteBroker, with the same at-least-once append
// semantics (§4.1's replay contract absorbs the duplicates).

// clusterResolveAttempts bounds one operation's leader-resolution loop.
// Exhausting it surfaces the last error to the caller, whose own retry
// loop (worker pollRetry, frontend shed-and-retry) takes over.
const clusterResolveAttempts = 6

// Cluster routes Bus traffic across broker replicas by partition leader.
type Cluster struct {
	peers   []string
	clients []*rpc.Client // index-aligned with peers, reconnecting
	coordC  *rpc.Client   // partition map + heartbeat/telemetry endpoint
	timeout time.Duration

	// retrySleep spaces leader-resolution attempts (the coordinator needs
	// a detection interval to promote); tests shrink it.
	retrySleep time.Duration
	// refreshEvery rate-limits partition-map fetches so a herd of failing
	// calls does not hammer the coordinator.
	refreshEvery time.Duration

	mu          sync.Mutex
	pm          PartMap
	lastRefresh time.Time
	topics      map[string]*ClusterTopic
}

// DialCluster connects to every broker replica of peers plus the
// coordinator endpoint serving MethodPartMap (empty coordAddr defaults to
// peers[0], the conventional coordinator host). Like DialBroker, the
// underlying clients are self-healing and a peer being down at dial time
// is not an error.
func DialCluster(peers []string, coordAddr string, timeout time.Duration) (*Cluster, error) {
	if len(peers) == 0 {
		return nil, errors.New("mq: cluster needs ≥ 1 peer")
	}
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	if coordAddr == "" {
		coordAddr = peers[0]
	}
	c := &Cluster{
		peers:        peers,
		timeout:      timeout,
		retrySleep:   100 * time.Millisecond,
		refreshEvery: 50 * time.Millisecond,
		topics:       make(map[string]*ClusterTopic),
	}
	for _, addr := range peers {
		// A small retry budget: the leader-resolution loop above it is the
		// real retry policy, and a dead peer should fail fast into a map
		// refresh instead of backing off against a corpse.
		cl, err := rpc.DialOpts(addr, rpc.Options{Reconnect: true, RetryBudget: 1})
		if err != nil {
			return nil, fmt.Errorf("mq: dial cluster peer %s: %w", addr, err)
		}
		c.clients = append(c.clients, cl)
	}
	cc, err := rpc.DialOpts(coordAddr, rpc.Options{Reconnect: true, RetryBudget: 2})
	if err != nil {
		return nil, fmt.Errorf("mq: dial coordinator %s: %w", coordAddr, err)
	}
	c.coordC = cc
	return c, nil
}

// Client exposes the coordinator connection so co-located services
// (heartbeats, telemetry) share it, mirroring RemoteBroker.Client.
func (c *Cluster) Client() *rpc.Client { return c.coordC }

// OpenTopic implements Bus: the topic is created on every reachable
// replica (followers also auto-create it on the first replicate frame, so
// one reachable peer is enough to proceed). Reopening a cached topic with
// a different partition count is an error, mirroring broker-side
// CreateTopic: a handle whose AppendByKey hashing disagrees with the
// broker layout would silently misroute.
func (c *Cluster) OpenTopic(name string, partitions int) (TopicHandle, error) {
	c.mu.Lock()
	cached, ok := c.topics[name]
	c.mu.Unlock()
	if ok {
		if cached.parts != partitions {
			return nil, fmt.Errorf("mq: topic %q open with %d partitions, requested %d", name, cached.parts, partitions)
		}
		return cached, nil
	}
	w := codec.NewWriter(32)
	w.String(name)
	w.Uvarint(uint64(partitions))
	created := 0
	var lastErr error
	// c.timeout budgets the whole replica sweep: a dead peer must not
	// multiply the worst case by the replica count.
	deadline := time.Now().Add(c.timeout)
	for _, cl := range c.clients {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = rpc.ErrDeadlineExceeded
			}
			break
		}
		if _, err := cl.Call(methodOpenTopic, w.Bytes(), remaining); err != nil {
			lastErr = err
		} else {
			created++
		}
	}
	if created == 0 {
		return nil, fmt.Errorf("mq: open topic %q on no replica: %w", name, lastErr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.topics[name]; ok {
		// A concurrent open won the insert race; same mismatch rule applies.
		if t.parts != partitions {
			return nil, fmt.Errorf("mq: topic %q open with %d partitions, requested %d", name, t.parts, partitions)
		}
		return t, nil
	}
	t := &ClusterTopic{cluster: c, name: name, parts: partitions}
	c.topics[name] = t
	return t, nil
}

// Close implements Bus.
func (c *Cluster) Close() error {
	var firstErr error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.coordC.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// leader resolves the current leader peer for (topic, partition) under the
// client's cached map.
func (c *Cluster) leader(topic string, partition int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pm.Leader(topic, partition, len(c.peers))
}

// refreshMap fetches the coordinator's partition map, rate-limited so
// concurrent failing calls collapse into one fetch. Best-effort: an
// unreachable coordinator leaves the cached map in place (the static
// partition % R default still routes most traffic correctly).
func (c *Cluster) refreshMap() {
	c.mu.Lock()
	if time.Since(c.lastRefresh) < c.refreshEvery {
		c.mu.Unlock()
		return
	}
	c.lastRefresh = time.Now()
	c.mu.Unlock()
	pm, err := FetchPartMap(c.coordC, c.timeout)
	if err != nil {
		return
	}
	c.mu.Lock()
	if pm.Version >= c.pm.Version {
		c.pm = pm
	}
	c.mu.Unlock()
}

// resolvable classifies an error as worth a map-refresh-and-retry: a
// leadership rejection, a quorum timeout (the leader may be mid-demotion),
// or a transport failure (the leader may be dead). Handler-level errors
// like backpressure, and this client's own shutdown, propagate.
func resolvable(err error) bool {
	if IsNotLeader(err) || IsQuorumUnavailable(err) {
		return true
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, rpc.ErrClosed) || errors.Is(err, rpc.ErrDeadlineExceeded) {
		return false
	}
	return true
}

// callLeader issues method against the current leader of (topic, part),
// re-resolving leadership on failure. Unknown-topic responses re-create
// the topic on that peer (the RemoteBroker restart-healing contract).
func (c *Cluster) callLeader(topic string, parts, part int, method string, req []byte, timeout time.Duration) ([]byte, error) {
	// timeout is a total budget across resolution attempts, like
	// rpc.CallTraced: each retry gets only what remains, so a dead leader
	// cannot multiply the caller's wait by the attempt count.
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	var lastErr error
	for attempt := 0; attempt < clusterResolveAttempts; attempt++ {
		if attempt > 0 {
			c.refreshMap()
		}
		remaining := timeout
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				if lastErr == nil {
					lastErr = rpc.ErrDeadlineExceeded
				}
				break
			}
		}
		peer := c.leader(topic, part)
		resp, err := c.clients[peer].Call(method, req, remaining)
		if err == nil {
			return resp, nil
		}
		if isUnknownTopic(err) {
			w := codec.NewWriter(32)
			w.String(topic)
			w.Uvarint(uint64(parts))
			//lint:allow droppederror reason=best-effort heal; the retried call below surfaces the real failure
			_, _ = c.clients[peer].Call(methodOpenTopic, w.Bytes(), remaining)
			lastErr = err
			continue
		}
		if !resolvable(err) {
			return nil, err
		}
		lastErr = err
		if attempt < clusterResolveAttempts-1 {
			// Give the coordinator a detection interval before the next
			// resolution; callers' own retry loops absorb longer outages.
			time.Sleep(c.retrySleep)
		}
	}
	return nil, lastErr
}

// ClusterTopic is a TopicHandle routed through a Cluster.
type ClusterTopic struct {
	cluster *Cluster
	name    string
	parts   int
}

// Name implements TopicHandle.
func (t *ClusterTopic) Name() string { return t.name }

// NumPartitions implements TopicHandle.
func (t *ClusterTopic) NumPartitions() int { return t.parts }

// Append implements TopicHandle.
func (t *ClusterTopic) Append(partition int, key uint64, value []byte) (int64, error) {
	w := codec.NewWriter(32 + len(value))
	w.String(t.name)
	w.Uvarint(uint64(partition))
	w.Uvarint(key)
	w.Bytes32(value)
	resp, err := t.cluster.callLeader(t.name, t.parts, partition, methodAppend, w.Bytes(), t.cluster.timeout)
	if err != nil {
		return 0, err
	}
	r := codec.NewReader(resp)
	off := r.Varint()
	return off, r.Err()
}

// AppendBatch implements TopicHandle.
func (t *ClusterTopic) AppendBatch(partition int, recs []BatchRecord) (int64, error) {
	if len(recs) == 0 {
		return t.NextOffset(partition), nil
	}
	w := codec.GetWriter()
	w.String(t.name)
	w.Uvarint(uint64(partition))
	w.Uvarint(uint64(len(recs)))
	for i := range recs {
		w.Uvarint(recs[i].Key)
		w.Bytes32(recs[i].Value)
	}
	resp, err := t.cluster.callLeader(t.name, t.parts, partition, methodAppendBatch, w.Bytes(), t.cluster.timeout)
	codec.PutWriter(w)
	if err != nil {
		return 0, err
	}
	r := codec.NewReader(resp)
	off := r.Varint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return off, r.Finish()
}

// AppendByKey implements TopicHandle with the same routing hash as the
// local broker.
func (t *ClusterTopic) AppendByKey(key uint64, value []byte) (int64, error) {
	return t.Append(int(hashPartition(key, t.parts)), key, value)
}

// NextOffset implements TopicHandle.
func (t *ClusterTopic) NextOffset(partition int) int64 {
	next, _, _ := t.meta(partition)
	return next
}

// EndOffset implements TopicHandle (== NextOffset; see Topic.EndOffset).
func (t *ClusterTopic) EndOffset(partition int) int64 {
	return t.NextOffset(partition)
}

// Depth implements TopicHandle.
func (t *ClusterTopic) Depth(partition int) int64 {
	_, depth, _ := t.meta(partition)
	return depth
}

// CommittedOffset implements TopicHandle (-1 when no replica is
// reachable: unknown lag must not read as zero lag).
func (t *ClusterTopic) CommittedOffset(partition int) int64 {
	_, _, committed := t.meta(partition)
	return committed
}

func (t *ClusterTopic) meta(partition int) (next, depth, committed int64) {
	w := codec.NewWriter(32)
	w.String(t.name)
	w.Uvarint(uint64(partition))
	resp, err := t.cluster.callLeader(t.name, t.parts, partition, methodMeta, w.Bytes(), t.cluster.timeout)
	if err != nil {
		return 0, 0, -1
	}
	r := codec.NewReader(resp)
	return r.Varint(), r.Varint(), r.Varint()
}

// OpenConsumer implements TopicHandle. The cursor lives client-side, so a
// failover mid-stream re-issues the fetch at the same offset against the
// new leader — no records are skipped or dropped.
func (t *ClusterTopic) OpenConsumer(partition int, from int64) Cursor {
	return &ClusterConsumer{topic: t, partition: partition, offset: from}
}

// ClusterConsumer is a Cursor over a Cluster with long-poll fetches.
type ClusterConsumer struct {
	topic     *ClusterTopic
	partition int
	offset    int64
}

// Poll implements Cursor, chunking long waits below the broker's
// server-side cap exactly like RemoteConsumer.Poll.
func (c *ClusterConsumer) Poll(max int, wait time.Duration) ([]Record, error) {
	deadline := time.Now().Add(wait)
	for {
		chunk := wait
		if chunk > maxServerFetchWait {
			if chunk = time.Until(deadline); chunk > maxServerFetchWait {
				chunk = maxServerFetchWait
			}
		}
		recs, err := c.pollOnce(max, chunk)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if wait <= maxServerFetchWait || !time.Now().Before(deadline) {
			return nil, nil
		}
	}
}

func (c *ClusterConsumer) pollOnce(max int, wait time.Duration) ([]Record, error) {
	if wait < 0 {
		wait = 0
	}
	w := codec.NewWriter(40)
	w.String(c.topic.name)
	w.Uvarint(uint64(c.partition))
	w.Varint(c.offset)
	w.Uvarint(uint64(max))
	w.Uvarint(uint64(wait / time.Millisecond))
	resp, err := c.topic.cluster.callLeader(c.topic.name, c.topic.parts, c.partition,
		methodFetch, w.Bytes(), wait+c.topic.cluster.timeout)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(resp)
	next := r.Varint()
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	var recs []Record
	for i := 0; i < n; i++ {
		rec := Record{Offset: r.Varint(), Key: r.Uvarint(), Ts: r.Varint()}
		val := r.Bytes32()
		v := make([]byte, len(val))
		copy(v, val)
		rec.Value = v
		recs = append(recs, rec)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	c.offset = next
	return recs, nil
}

// Offset implements Cursor.
func (c *ClusterConsumer) Offset() int64 { return c.offset }

// Committed implements Cursor (see Consumer.Committed).
func (c *ClusterConsumer) Committed() int64 { return c.offset }

// Commit implements Cursor: pushes the cursor position to the leader.
func (c *ClusterConsumer) Commit() error {
	w := codec.NewWriter(40)
	w.String(c.topic.name)
	w.Uvarint(uint64(c.partition))
	w.Varint(c.offset)
	_, err := c.topic.cluster.callLeader(c.topic.name, c.topic.parts, c.partition,
		methodCommit, w.Bytes(), c.topic.cluster.timeout)
	return err
}

// SeekTo implements Cursor.
func (c *ClusterConsumer) SeekTo(offset int64) { c.offset = offset }

// Lag implements Cursor (EndOffset - Committed).
func (c *ClusterConsumer) Lag() int64 {
	return c.topic.EndOffset(c.partition) - c.offset
}

var (
	_ Bus         = (*Cluster)(nil)
	_ TopicHandle = (*ClusterTopic)(nil)
	_ Cursor      = (*ClusterConsumer)(nil)
)
