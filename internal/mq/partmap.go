package mq

import (
	"fmt"
	"time"

	"helios/internal/codec"
	"helios/internal/rpc"
)

// Partition-map plumbing shared by brokers, the coordinator's failover
// controller (internal/coord) and cluster clients: who leads each
// (topic, partition), versioned so promotions supersede stale views.
//
// Leadership defaults to partition % len(peers) — a static spread every
// component computes identically with no coordination — and the map holds
// only the overrides failover promotions create. A map is applied
// version-monotonically everywhere: a broker or client never moves from a
// newer view to an older one.

// PartKey addresses one partition of one topic.
type PartKey struct {
	Topic     string
	Partition int
}

// PartMap is the versioned leadership table. The zero value (version 0,
// no overrides) is the deployment-time default assignment.
type PartMap struct {
	Version int64
	Leaders map[PartKey]int
}

// Leader returns the peer index leading (topic, partition) under this map,
// falling back to the static partition % peers spread when no override
// exists.
func (pm *PartMap) Leader(topic string, partition, peers int) int {
	if pm != nil && pm.Leaders != nil {
		if l, ok := pm.Leaders[PartKey{Topic: topic, Partition: partition}]; ok {
			return l
		}
	}
	if peers <= 0 {
		return 0
	}
	return partition % peers
}

// Clone deep-copies the map so callers can mutate their copy freely.
func (pm PartMap) Clone() PartMap {
	out := PartMap{Version: pm.Version, Leaders: make(map[PartKey]int, len(pm.Leaders))}
	for k, v := range pm.Leaders {
		out.Leaders[k] = v
	}
	return out
}

// ReplEntry is one partition's replication position as reported by a
// broker: Next is the offset its log would assign to the next record.
type ReplEntry struct {
	Topic     string
	Partition int
	Next      int64
}

// RPC methods of the replication control plane. MethodReplicate and
// MethodLead are served by every broker (ServeReplication); MethodPartMap
// and MethodReplStatus are served by the coordinator
// (coord.Failover.ServeRPC).
const (
	// MethodReplicate streams leader appends to a follower broker.
	MethodReplicate = "mq.replicate"
	// MethodLead pushes a versioned partition map to a broker.
	MethodLead = "mq.lead"
	// MethodPartMap returns the coordinator's current partition map.
	MethodPartMap = "coord.partmap"
	// MethodReplStatus reports one broker's per-partition offsets to the
	// coordinator (doubles as the broker's liveness beat).
	MethodReplStatus = "coord.replstatus"
)

// EncodePartMap serializes a partition map.
func EncodePartMap(pm PartMap) []byte {
	w := codec.NewWriter(16 + 24*len(pm.Leaders))
	w.Varint(pm.Version)
	w.Uvarint(uint64(len(pm.Leaders)))
	for k, v := range pm.Leaders {
		w.String(k.Topic)
		w.Uvarint(uint64(k.Partition))
		w.Uvarint(uint64(v))
	}
	return w.Bytes()
}

// DecodePartMap parses a partition map.
func DecodePartMap(buf []byte) (PartMap, error) {
	r := codec.NewReader(buf)
	pm := PartMap{Version: r.Varint(), Leaders: make(map[PartKey]int)}
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return PartMap{}, err
	}
	if n > r.Remaining() {
		return PartMap{}, codec.ErrShortBuffer
	}
	for i := 0; i < n; i++ {
		k := PartKey{Topic: r.String(), Partition: int(r.Uvarint())}
		pm.Leaders[k] = int(r.Uvarint())
	}
	if err := r.Finish(); err != nil {
		return PartMap{}, err
	}
	return pm, nil
}

// EncodeReplStatus serializes one broker's replication report.
func EncodeReplStatus(peer int, entries []ReplEntry) []byte {
	w := codec.NewWriter(16 + 24*len(entries))
	w.Uvarint(uint64(peer))
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.String(e.Topic)
		w.Uvarint(uint64(e.Partition))
		w.Varint(e.Next)
	}
	return w.Bytes()
}

// DecodeReplStatus parses a replication report.
func DecodeReplStatus(buf []byte) (peer int, entries []ReplEntry, err error) {
	r := codec.NewReader(buf)
	peer = int(r.Uvarint())
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	if n > r.Remaining() {
		return 0, nil, codec.ErrShortBuffer
	}
	entries = make([]ReplEntry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, ReplEntry{
			Topic: r.String(), Partition: int(r.Uvarint()), Next: r.Varint(),
		})
	}
	if err := r.Finish(); err != nil {
		return 0, nil, err
	}
	return peer, entries, nil
}

// FetchPartMap asks a coordinator endpoint for its current partition map.
func FetchPartMap(c *rpc.Client, timeout time.Duration) (PartMap, error) {
	resp, err := c.Call(MethodPartMap, nil, timeout)
	if err != nil {
		return PartMap{}, err
	}
	return DecodePartMap(resp)
}

// SendLead pushes a partition map to a broker (promotion or demotion sync).
func SendLead(c *rpc.Client, pm PartMap, timeout time.Duration) error {
	_, err := c.Call(MethodLead, EncodePartMap(pm), timeout)
	return err
}

// ReportReplStatus reports a broker's per-partition offsets to the
// coordinator.
func ReportReplStatus(c *rpc.Client, peer int, entries []ReplEntry, timeout time.Duration) error {
	_, err := c.Call(MethodReplStatus, EncodeReplStatus(peer, entries), timeout)
	return err
}

// notLeaderError is the concrete wrapper so the message carries the
// partition and current-leader hint across the RPC boundary.
func notLeaderError(topic string, part, leader int) error {
	return fmt.Errorf("%w for %s/%d (leader=%d)", ErrNotLeader, topic, part, leader)
}
