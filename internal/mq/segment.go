package mq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"helios/internal/codec"
	"helios/internal/faultpoint"
)

// segment is the disk backing of one partition: a single append-only file
// of length-framed records. On topic creation an existing segment is
// replayed into memory, giving the broker Kafka-style restart durability.
type segment struct {
	f       *os.File
	w       *bufio.Writer
	pending int
	every   int
}

// segmentPath keeps one file per topic/partition.
func segmentPath(dir, topic string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%04d.log", topic, idx))
}

// openSegment replays any existing log into the partition and opens the
// file for appends.
func (p *partition) openSegment(dir string) error {
	// Restart-replay boundary: a fault here models a segment that cannot
	// be reopened after a crash (missing dir, unreadable log).
	if err := faultpoint.Inject("mq.segment.open"); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mq: create segment dir: %w", err)
	}
	path := segmentPath(dir, p.topic, p.idx)
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := p.replay(data); err != nil {
			return fmt.Errorf("mq: replay %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("mq: open segment: %w", err)
	}
	p.seg = &segment{f: f, w: bufio.NewWriterSize(f, 1<<16), every: p.broker.opts.SyncEvery}
	return nil
}

// replay loads framed records from data, tolerating a truncated tail (a
// crash mid-append loses at most the partial record, like Kafka's log
// recovery).
func (p *partition) replay(data []byte) error {
	rd := codec.NewReader(data)
	var recs []Record
	for rd.Remaining() > 0 {
		offv := rd.Uvarint()
		key := rd.Uvarint()
		ts := rd.Varint()
		val := rd.Bytes32()
		if rd.Err() != nil {
			break // truncated tail
		}
		v := make([]byte, len(val))
		copy(v, val)
		recs = append(recs, Record{Offset: int64(offv), Key: key, Value: v, Ts: ts})
	}
	if len(recs) == 0 {
		return nil
	}
	p.records = recs
	p.head = recs[0].Offset
	p.next = recs[len(recs)-1].Offset + 1
	return nil
}

func (s *segment) append(rec Record) error {
	if err := faultpoint.Inject("mq.segment.append"); err != nil {
		return err
	}
	w := codec.NewWriter(32 + len(rec.Value))
	w.Uvarint(uint64(rec.Offset))
	w.Uvarint(rec.Key)
	w.Varint(rec.Ts)
	w.Bytes32(rec.Value)
	if _, err := s.w.Write(w.Bytes()); err != nil {
		return err
	}
	s.pending++
	if s.pending >= s.every {
		s.pending = 0
		if err := s.w.Flush(); err != nil {
			return err
		}
		return s.f.Sync()
	}
	return nil
}

func (s *segment) close() error {
	// Final-flush boundary: a fault here models losing the buffered tail
	// of the log on shutdown.
	if err := faultpoint.Inject("mq.segment.close"); err != nil {
		s.f.Close()
		return err
	}
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil && err != io.EOF {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
