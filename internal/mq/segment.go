package mq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"helios/internal/codec"
	"helios/internal/faultpoint"
)

// segment is the disk backing of one partition: a single append-only file
// of length-framed records. On topic creation an existing segment is
// replayed into memory, giving the broker Kafka-style restart durability.
type segment struct {
	f       *os.File
	w       *bufio.Writer
	pending int
	every   int
	policy  FsyncPolicy
}

// segmentPath keeps one file per topic/partition.
func segmentPath(dir, topic string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%04d.log", topic, idx))
}

// openSegment replays any existing log into the partition and opens the
// file for appends.
func (p *partition) openSegment(dir string) error {
	// Restart-replay boundary: a fault here models a segment that cannot
	// be reopened after a crash (missing dir, unreadable log).
	if err := faultpoint.Inject("mq.segment.open"); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mq: create segment dir: %w", err)
	}
	path := segmentPath(dir, p.topic, p.idx)
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := p.replay(data); err != nil {
			return fmt.Errorf("mq: replay %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("mq: open segment: %w", err)
	}
	p.seg = &segment{f: f, w: bufio.NewWriterSize(f, 1<<16), every: p.broker.opts.SyncEvery, policy: p.broker.opts.Fsync}
	return nil
}

// replay loads framed records from data, tolerating a truncated tail (a
// crash mid-append loses at most the partial record, like Kafka's log
// recovery) and offset rewinds: a frame whose offset is at or below an
// already-replayed one supersedes everything from that offset on. Rewinds
// appear when a failed append or batch was retried (the orphaned first
// attempt never became visible), and when a demoted leader's abandoned
// tail was overwritten by the new leader's stream — in both cases the
// later bytes are the authoritative log.
func (p *partition) replay(data []byte) error {
	rd := codec.NewReader(data)
	var recs []Record
	for rd.Remaining() > 0 {
		offv := rd.Uvarint()
		key := rd.Uvarint()
		ts := rd.Varint()
		val := rd.Bytes32()
		if rd.Err() != nil {
			break // truncated tail
		}
		off := int64(offv)
		if n := len(recs); n > 0 && off <= recs[n-1].Offset {
			if off < recs[0].Offset {
				recs = recs[:0]
			} else {
				recs = recs[:int(off-recs[0].Offset)]
			}
		}
		v := make([]byte, len(val))
		copy(v, val)
		recs = append(recs, Record{Offset: off, Key: key, Value: v, Ts: ts})
	}
	if len(recs) == 0 {
		return nil
	}
	p.records = recs
	p.head = recs[0].Offset
	p.next = recs[len(recs)-1].Offset + 1
	return nil
}

func (s *segment) append(rec Record) error {
	if err := faultpoint.Inject("mq.segment.append"); err != nil {
		return err
	}
	w := codec.NewWriter(32 + len(rec.Value))
	w.Uvarint(uint64(rec.Offset))
	w.Uvarint(rec.Key)
	w.Varint(rec.Ts)
	w.Bytes32(rec.Value)
	if _, err := s.w.Write(w.Bytes()); err != nil {
		return err
	}
	s.pending++
	if s.policy == FsyncInterval && s.pending >= s.every {
		return s.sync()
	}
	return nil
}

// sync flushes buffered frames and fsyncs the file — the durability
// boundary of the Fsync policy. Under FsyncAlways the partition calls it
// once per append/batch before the records become visible; under
// FsyncInterval it runs every SyncEvery appends; under FsyncNever only
// close reaches it.
func (s *segment) sync() error {
	// Torn-write boundary: a fault here models power loss between the
	// buffered write and its fsync.
	if err := faultpoint.Inject("mq.segment.sync"); err != nil {
		return err
	}
	s.pending = 0
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

func (s *segment) close() error {
	// Final-flush boundary: a fault here models losing the buffered tail
	// of the log on shutdown.
	if err := faultpoint.Inject("mq.segment.close"); err != nil {
		s.f.Close()
		return err
	}
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil && err != io.EOF {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
