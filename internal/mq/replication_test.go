package mq

import (
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"helios/internal/faultpoint"
	"helios/internal/rpc"
)

// startReplicaSet boots n brokers serving both the client and replication
// surfaces, wired into one replica set with the given quorum. Cleanup
// closes everything; register a leak baseline before calling it so the
// assert runs after the teardown.
func startReplicaSet(t *testing.T, n, quorum int) ([]*Broker, []*rpc.Server, []string) {
	t.Helper()
	brokers := make([]*Broker, n)
	srvs := make([]*rpc.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		b := NewBroker(Options{})
		srv := rpc.NewServer()
		ServeBroker(b, srv)
		ServeReplication(b, srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		brokers[i], srvs[i], addrs[i] = b, srv, addr
	}
	for i, b := range brokers {
		cfg := ReplicationConfig{Self: i, Peers: addrs, Quorum: quorum, Timeout: time.Second}
		if err := b.EnableReplication(cfg); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for i := range brokers {
			srvs[i].Close()
			brokers[i].Close()
		}
	})
	return brokers, srvs, addrs
}

// leakCheck registers a cleanup that fails the test if goroutines did not
// drain back to the baseline. Call it FIRST so it runs after every other
// cleanup (t.Cleanup is LIFO).
func leakCheck(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= baseline+2 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		nb := runtime.Stack(buf, true)
		t.Errorf("goroutines grew from %d to %d after teardown:\n%s",
			baseline, runtime.NumGoroutine(), buf[:nb])
	})
}

func TestReplicatedAppendReachesQuorum(t *testing.T) {
	leakCheck(t)
	brokers, _, _ := startReplicaSet(t, 3, 2)
	tp, err := brokers[0].CreateTopic("t", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Partition 0's default leader is broker 0; the append must ack only
	// after a follower holds it too.
	off, err := tp.Append(0, 1, []byte("a"))
	if err != nil || off != 0 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	// The ack implies >= quorum-1 followers applied the record; both
	// should converge (the second follower's ack may land after ours).
	for _, fi := range []int{1, 2} {
		deadline := time.Now().Add(2 * time.Second)
		for {
			ft, ok := brokers[fi].Topic("t")
			if ok && ft.NextOffset(0) == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %d never applied the record", fi)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// The high watermark advanced past the batch: consumers see it.
	recs, err := tp.NewConsumer(0, 0).Poll(10, 100*time.Millisecond)
	if err != nil || len(recs) != 1 || string(recs[0].Value) != "a" {
		t.Fatalf("leader consumer after quorum: %v %v", recs, err)
	}
	if acks := brokers[0].replicatorRef().FollowerAcks.Value(); acks < 1 {
		t.Fatalf("follower ack counter stayed %d", acks)
	}
}

func TestAppendToNonLeaderRejected(t *testing.T) {
	leakCheck(t)
	brokers, _, _ := startReplicaSet(t, 3, 2)
	tp, err := brokers[0].CreateTopic("t", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Partition 1's default leader is broker 1; broker 0 must reject.
	_, err = tp.Append(1, 1, []byte("a"))
	if !IsNotLeader(err) {
		t.Fatalf("want ErrNotLeader, got %v", err)
	}
	if IsFatal(err) {
		t.Fatal("ErrNotLeader must not kill poll loops")
	}
}

func TestFollowerDeathQuorumStillAcks(t *testing.T) {
	leakCheck(t)
	brokers, srvs, _ := startReplicaSet(t, 3, 2)
	tp, err := brokers[0].CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Append(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// One follower dies; quorum 2 of 3 still holds via the survivor.
	srvs[2].Close()
	brokers[2].Close()
	for i := 0; i < 3; i++ {
		if _, err := tp.Append(0, 2, []byte("b")); err != nil {
			t.Fatalf("append %d with one dead follower: %v", i, err)
		}
	}
	recs, err := tp.NewConsumer(0, 0).Poll(10, 100*time.Millisecond)
	if err != nil || len(recs) != 4 {
		t.Fatalf("consumer: %d recs, %v", len(recs), err)
	}
}

// TestQuorumTimeoutFakeTimer drives the leader's quorum wait with a manual
// timer channel: the only follower hangs (a raw listener that never
// responds), the injected timer fires, and the append must fail with
// ErrQuorumUnavailable without the record becoming visible to consumers.
func TestQuorumTimeoutFakeTimer(t *testing.T) {
	leakCheck(t)
	hang, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hang.Close()
	go func() {
		for {
			c, err := hang.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				//lint:allow droppederror reason=test sink draining a hung follower connection
				_, _ = io.Copy(io.Discard, c)
			}()
		}
	}()

	fire := make(chan time.Time, 1)
	b := NewBroker(Options{})
	defer b.Close()
	err = b.EnableReplication(ReplicationConfig{
		Self:    0,
		Peers:   []string{"127.0.0.1:1", hang.Addr().String()},
		Quorum:  2,
		Timeout: 300 * time.Millisecond, // bounds the hung follower RPC so its goroutine drains
		After:   func(time.Duration) <-chan time.Time { return fire },
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	fire <- time.Time{} // the quorum wait times out immediately
	_, err = tp.Append(0, 1, []byte("a"))
	if !IsQuorumUnavailable(err) {
		t.Fatalf("want ErrQuorumUnavailable, got %v", err)
	}
	if IsFatal(err) {
		t.Fatal("ErrQuorumUnavailable must not kill poll loops")
	}
	// The record was never acked and must stay below the high watermark.
	recs, err := tp.NewConsumer(0, 0).Poll(10, 50*time.Millisecond)
	if err != nil || len(recs) != 0 {
		t.Fatalf("unacked record leaked to consumers: %v %v", recs, err)
	}
}

// TestFsyncAlwaysTornWrite arms the segment fault hooks under FsyncAlways:
// a failed append never enters the in-memory log, and an offset that was
// never acked never resurfaces as committed state after a restart.
func TestFsyncAlwaysTornWrite(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncAlways}
	b := NewBroker(opts)
	tp, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Append(0, 1, []byte("durable")); err != nil {
		t.Fatal(err)
	}

	// A torn segment write: the append fails cleanly and the in-memory
	// log is untouched — durability before visibility.
	faultpoint.ErrorOnce("mq.segment.append")
	if _, err := tp.Append(0, 2, []byte("torn")); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("want injected append failure, got %v", err)
	}
	if n := tp.NextOffset(0); n != 1 {
		t.Fatalf("failed append mutated the log: next=%d", n)
	}

	// A torn fsync: bytes may be in the page cache but the ack is
	// withheld, so the producer knows to retry.
	faultpoint.ErrorOnce("mq.segment.sync")
	if _, err := tp.Append(0, 3, []byte("unsynced")); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	if n := tp.NextOffset(0); n != 1 {
		t.Fatalf("unsynced append became visible: next=%d", n)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the same directory: the acked record is there; no
	// offset the producer saw acked is missing.
	faultpoint.Reset()
	b2 := NewBroker(opts)
	defer b2.Close()
	tp2, err := b2.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := tp2.NextOffset(0); n < 1 {
		t.Fatalf("acked record lost across restart: next=%d", n)
	}
	recs, err := tp2.NewConsumer(0, 0).Poll(10, 100*time.Millisecond)
	if err != nil || len(recs) < 1 || string(recs[0].Value) != "durable" {
		t.Fatalf("acked record unreadable after restart: %v %v", recs, err)
	}
}

// TestReplOffsetsExcludeUnackedTail pins the status-report contract: a
// leader whose append failed quorum holds the record above its high
// watermark, and its replication-status report must advertise the
// quorum-acked position — not the raw log end — so the abandoned tail can
// never make this replica look most-caught-up in a later failover.
func TestReplOffsetsExcludeUnackedTail(t *testing.T) {
	leakCheck(t)
	hang, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hang.Close()
	go func() {
		for {
			c, err := hang.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				//lint:allow droppederror reason=test sink draining a hung follower connection
				_, _ = io.Copy(io.Discard, c)
			}()
		}
	}()

	fire := make(chan time.Time, 1)
	b := NewBroker(Options{})
	defer b.Close()
	err = b.EnableReplication(ReplicationConfig{
		Self:    0,
		Peers:   []string{"127.0.0.1:1", hang.Addr().String()},
		Quorum:  2,
		Timeout: 300 * time.Millisecond,
		After:   func(time.Duration) <-chan time.Time { return fire },
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	fire <- time.Time{}
	if _, err := tp.Append(0, 1, []byte("a")); !IsQuorumUnavailable(err) {
		t.Fatalf("want ErrQuorumUnavailable, got %v", err)
	}
	if n := tp.NextOffset(0); n != 1 {
		t.Fatalf("log end = %d, want the un-acked record retained at 1", n)
	}
	for _, e := range b.ReplOffsets() {
		if e.Topic == "t" && e.Partition == 0 && e.Next != 0 {
			t.Fatalf("report advertises the un-acked tail: Next=%d, want hw 0", e.Next)
		}
	}
}

// TestAppendAtTruncatesDivergentTail pins the follower-side divergence
// rule: a replicate frame overlapping the local log verifies the overlap
// instead of skipping it. A mismatch — a revived ex-leader whose un-acked
// tail survived under a restart-pinned high watermark — truncates to the
// divergence point and takes the leader's records, so the follower can
// never ack (and a later promotion never serve) records that differ from
// what the leader streamed.
func TestAppendAtTruncatesDivergentTail(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	tp, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	p := tp.parts[0]
	// The replica's own log: "a" was quorum-acked, offsets 1-2 are an
	// abandoned leadership tail a restart pinned under hw.
	for _, v := range []string{"a", "stale-b", "stale-c"} {
		if _, err := p.append(1, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	p.hw = p.next // the restart pin: trusts its own durable log
	p.mu.Unlock()

	// The new leader's authoritative stream for [1, 4).
	frame := []Record{
		{Offset: 1, Key: 2, Value: []byte("b"), Ts: 7},
		{Offset: 2, Key: 2, Value: []byte("c"), Ts: 7},
		{Offset: 3, Key: 2, Value: []byte("d"), Ts: 7},
	}
	next, applied, err := p.appendAt(1, frame)
	if err != nil || next != 4 || applied != 3 {
		t.Fatalf("appendAt: next=%d applied=%d err=%v, want 4, 3, nil", next, applied, err)
	}
	recs, ok := p.readRange(0, 4)
	if !ok || len(recs) != 4 {
		t.Fatalf("readRange: %d recs, ok=%v", len(recs), ok)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if string(recs[i].Value) != want {
			t.Fatalf("offset %d holds %q, want %q", i, recs[i].Value, want)
		}
	}
	p.mu.Lock()
	hw := p.hw
	p.mu.Unlock()
	if hw > 1 {
		t.Fatalf("hw = %d after divergence truncation, want clamped ≤ 1", hw)
	}

	// Re-sending the now-matching frame is a pure no-op (idempotent
	// overlap): nothing truncated, nothing applied.
	next, applied, err = p.appendAt(1, frame)
	if err != nil || next != 4 || applied != 0 {
		t.Fatalf("idempotent resend: next=%d applied=%d err=%v, want 4, 0, nil", next, applied, err)
	}
}

func TestFatalityClassification(t *testing.T) {
	for _, tc := range []struct {
		err   error
		fatal bool
	}{
		{ErrNotLeader, false},
		{ErrQuorumUnavailable, false},
		{ErrClosed, true},
		{rpc.ErrClosed, true},
	} {
		if got := IsFatal(tc.err); got != tc.fatal {
			t.Errorf("IsFatal(%v) = %v, want %v", tc.err, got, tc.fatal)
		}
	}
	// Both rejections must classify across an RPC hop, where they arrive
	// as RemoteErrors carrying only the message text.
	if !IsNotLeader(&rpc.RemoteError{Msg: "mq: not leader for t/1 (leader=2)"}) {
		t.Error("remote ErrNotLeader not recognized")
	}
	if !IsQuorumUnavailable(&rpc.RemoteError{Msg: "mq: quorum unavailable: timeout with 0/1 follower acks for t/0 [0,1)"}) {
		t.Error("remote ErrQuorumUnavailable not recognized")
	}
	if IsNotLeader(errors.New("other")) || IsQuorumUnavailable(errors.New("other")) {
		t.Error("unrelated errors misclassified")
	}
}
