package mq

import (
	"runtime"
	"testing"
	"time"

	"helios/internal/rpc"
)

// Regression: a blocking local Poll must unblock with ErrClosed promptly
// when the broker closes, not wait out its full long-poll deadline.
func TestLocalPollUnblocksOnBrokerClose(t *testing.T) {
	b := NewBroker(Options{})
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := topic.NewConsumer(0, 0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Poll(1, 30*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	start := time.Now()
	b.Close()
	select {
	case err := <-done:
		if !IsFatal(err) {
			t.Fatalf("poll returned %v, want a fatal close error", err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("poll took %v to unblock after close", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll still blocked 5s after broker close")
	}
}

// Regression: rpc.Server.Close waits for in-flight handlers, so an uncapped
// server-side long-poll would hold broker shutdown hostage for the client's
// full wait (30s here). The server-side fetch cap bounds that: Close must
// return promptly even with a long poll in flight.
func TestServerCloseNotStalledByLongPoll(t *testing.T) {
	b := NewBroker(Options{})
	srv := rpc.NewServer()
	ServeBroker(b, srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := DialBroker(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	topic, err := rb.OpenTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := topic.OpenConsumer(0, 0)
	pollDone := make(chan error, 1)
	go func() {
		_, err := c.Poll(1, 30*time.Second)
		pollDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the long poll reach the server

	start := time.Now()
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		if waited := time.Since(start); waited > 3*time.Second {
			t.Fatalf("server close took %v with a long poll in flight", waited)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server close still blocked 10s after a 30s long poll started")
	}
	rb.Close()
	b.Close()
	select {
	case <-pollDone:
	case <-time.After(5 * time.Second):
		t.Fatal("client poll never returned after full shutdown")
	}
}

// Regression: a blocking remote Poll must unblock promptly when its own
// client closes (worker shutdown), with a fatal error so the poll loop
// exits instead of spinning.
func TestRemotePollUnblocksOnClientClose(t *testing.T) {
	b, rb, done := startRemote(t)
	defer done()
	_ = b
	topic, err := rb.OpenTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := topic.OpenConsumer(0, 0)
	pollDone := make(chan error, 1)
	go func() {
		_, err := c.Poll(1, 30*time.Second)
		pollDone <- err
	}()
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	rb.Close()
	select {
	case err := <-pollDone:
		if !IsFatal(err) {
			t.Fatalf("poll returned %v, want a fatal close error", err)
		}
		if waited := time.Since(start); waited > 3*time.Second {
			t.Fatalf("poll took %v to unblock after client close", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll still blocked 5s after client close")
	}
}

// The shutdown paths above must not strand goroutines: repeat a full
// bring-up / long-poll / tear-down cycle and check the goroutine count
// returns to baseline (same pattern as cluster's TestNoGoroutineLeaks).
func TestPollShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		b := NewBroker(Options{})
		srv := rpc.NewServer()
		ServeBroker(b, srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := DialBroker(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		topic, err := rb.OpenTopic("t", 1)
		if err != nil {
			t.Fatal(err)
		}
		local, _ := b.Topic("t")
		localDone := make(chan struct{})
		remoteDone := make(chan struct{})
		go func() {
			defer close(localDone)
			local.NewConsumer(0, 0).Poll(1, 30*time.Second)
		}()
		go func() {
			defer close(remoteDone)
			topic.OpenConsumer(0, 0).Poll(1, 30*time.Second)
		}()
		time.Sleep(50 * time.Millisecond)
		rb.Close()
		srv.Close()
		b.Close()
		for _, ch := range []chan struct{}{localDone, remoteDone} {
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Fatal("poller still blocked after full shutdown")
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
