package mq

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"helios/internal/codec"
	"helios/internal/rpc"
)

// Remote broker access: ServeBroker exposes a Broker over the RPC layer and
// RemoteBroker is the matching client, so sampling/serving workers in other
// processes share one durable queue service — the deployment of §4.1 where
// Kafka sits between all stages.

const (
	methodOpenTopic   = "mq.open"
	methodAppend      = "mq.append"
	methodAppendBatch = "mq.append_batch"
	methodFetch       = "mq.fetch"
	methodMeta        = "mq.meta"
	methodCommit      = "mq.commit"
)

// maxServerFetchWait caps how long one fetch RPC may park server-side.
// rpc.Server.Close waits for in-flight handlers, so an uncapped long-poll
// would hold broker shutdown hostage for the client's full wait; capping it
// bounds shutdown latency while RemoteConsumer.Poll re-issues fetches until
// the client's own wait is spent, preserving long-poll semantics.
const maxServerFetchWait = time.Second

// ServeBroker registers the broker's RPC surface on srv.
func ServeBroker(b *Broker, srv *rpc.Server) {
	srv.Handle(methodOpenTopic, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		parts := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if _, err := b.CreateTopic(name, parts); err != nil {
			return nil, err
		}
		return nil, nil
	})
	srv.Handle(methodAppend, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		part := int(r.Uvarint())
		key := r.Uvarint()
		val := r.Bytes32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		t, ok := b.Topic(name)
		if !ok {
			return nil, fmt.Errorf("mq: unknown topic %q", name)
		}
		v := make([]byte, len(val))
		copy(v, val)
		off, err := t.Append(part, key, v)
		if err != nil {
			return nil, err
		}
		w := codec.NewWriter(10)
		w.Varint(off)
		return w.Bytes(), nil
	})
	srv.Handle(methodAppendBatch, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		part := int(r.Uvarint())
		n := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if n > r.Remaining() {
			return nil, codec.ErrShortBuffer
		}
		if max := b.opts.MaxAppendBatch; max > 0 && n > max {
			return nil, fmt.Errorf("mq: append batch of %d exceeds broker bound %d", n, max)
		}
		t, ok := b.Topic(name)
		if !ok {
			return nil, fmt.Errorf("mq: unknown topic %q", name)
		}
		recs := make([]BatchRecord, 0, n)
		for i := 0; i < n; i++ {
			key := r.Uvarint()
			val := r.Bytes32()
			v := make([]byte, len(val))
			copy(v, val)
			recs = append(recs, BatchRecord{Key: key, Value: v})
		}
		if err := r.Finish(); err != nil {
			return nil, err
		}
		off, err := t.AppendBatch(part, recs)
		if err != nil {
			return nil, err
		}
		w := codec.NewWriter(10)
		w.Varint(off)
		return w.Bytes(), nil
	})
	srv.Handle(methodFetch, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		part := int(r.Uvarint())
		offset := r.Varint()
		max := int(r.Uvarint())
		waitMS := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		t, ok := b.Topic(name)
		if !ok {
			return nil, fmt.Errorf("mq: unknown topic %q", name)
		}
		if part < 0 || part >= len(t.parts) {
			return nil, fmt.Errorf("mq: partition %d out of range", part)
		}
		// Consumers read from the leader only: a follower's log may hold
		// an unreplicated tail destined for truncation.
		if err := b.checkLeader(name, part); err != nil {
			return nil, err
		}
		wait := time.Duration(waitMS) * time.Millisecond
		if wait > maxServerFetchWait {
			wait = maxServerFetchWait
		}
		recs, next, err := t.parts[part].fetch(offset, max, wait)
		if err != nil {
			return nil, err
		}
		w := codec.NewWriter(64 * len(recs))
		w.Varint(next)
		w.Uvarint(uint64(len(recs)))
		for _, rec := range recs {
			w.Varint(rec.Offset)
			w.Uvarint(rec.Key)
			w.Varint(rec.Ts)
			w.Bytes32(rec.Value)
		}
		return w.Bytes(), nil
	})
	srv.Handle(methodMeta, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		part := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		t, ok := b.Topic(name)
		if !ok {
			return nil, fmt.Errorf("mq: unknown topic %q", name)
		}
		// Offsets from a non-leader could overstate the log end by its
		// unreplicated tail; make clients re-resolve instead.
		if err := b.checkLeader(name, part); err != nil {
			return nil, err
		}
		w := codec.NewWriter(30)
		w.Varint(t.NextOffset(part))
		w.Varint(t.Depth(part))
		w.Varint(t.CommittedOffset(part))
		return w.Bytes(), nil
	})
	srv.Handle(methodCommit, func(req []byte) ([]byte, error) {
		r := codec.NewReader(req)
		name := r.String()
		part := int(r.Uvarint())
		offset := r.Varint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		t, ok := b.Topic(name)
		if !ok {
			return nil, fmt.Errorf("mq: unknown topic %q", name)
		}
		return nil, t.Commit(part, offset)
	})
}

// RemoteBroker is a Bus over an RPC connection to a broker server.
type RemoteBroker struct {
	client  *rpc.Client
	timeout time.Duration

	mu     sync.Mutex
	topics map[string]*RemoteTopic
}

// DialBroker connects to a broker served by ServeBroker. The underlying
// RPC client is self-healing: it reconnects with backoff after a broker
// restart and retries failed calls a few times. Appends are therefore
// at-least-once — a retried append may land twice, which the §4.1 replay
// contract already tolerates (TopK inserts are idempotent, reservoir
// duplicates are harmless noise). The broker being down at dial time is
// not an error; the first call heals it.
func DialBroker(addr string, timeout time.Duration) (*RemoteBroker, error) {
	return DialBrokerOpts(addr, timeout, rpc.Options{Reconnect: true, RetryBudget: 4})
}

// DialBrokerOpts is DialBroker with explicit transport options.
func DialBrokerOpts(addr string, timeout time.Duration, opts rpc.Options) (*RemoteBroker, error) {
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	c, err := rpc.DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &RemoteBroker{client: c, timeout: timeout, topics: make(map[string]*RemoteTopic)}, nil
}

// Client exposes the underlying RPC client so co-located services (the
// coordinator heartbeat) can share the connection, and so callers can read
// its reconnect/retry counters.
func (rb *RemoteBroker) Client() *rpc.Client { return rb.client }

// call issues an RPC. If the broker reports an unknown topic — the
// signature of a broker that restarted with an empty topic table — the
// topic is re-created (a restarted broker with a -dir replays its
// retained log on CreateTopic) and the call is issued once more.
func (rb *RemoteBroker) call(topic, method string, req []byte, timeout time.Duration) ([]byte, error) {
	resp, err := rb.client.Call(method, req, timeout)
	if err == nil || topic == "" || !isUnknownTopic(err) {
		return resp, err
	}
	rb.mu.Lock()
	t := rb.topics[topic]
	rb.mu.Unlock()
	if t == nil {
		return resp, err
	}
	w := codec.NewWriter(32)
	w.String(topic)
	w.Uvarint(uint64(t.parts))
	if _, rerr := rb.client.Call(methodOpenTopic, w.Bytes(), rb.timeout); rerr != nil {
		return nil, err
	}
	return rb.client.Call(method, req, timeout)
}

func isUnknownTopic(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "unknown topic")
}

// OpenTopic implements Bus.
func (rb *RemoteBroker) OpenTopic(name string, partitions int) (TopicHandle, error) {
	w := codec.NewWriter(32)
	w.String(name)
	w.Uvarint(uint64(partitions))
	if _, err := rb.client.Call(methodOpenTopic, w.Bytes(), rb.timeout); err != nil {
		return nil, err
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if t, ok := rb.topics[name]; ok {
		return t, nil
	}
	t := &RemoteTopic{broker: rb, name: name, parts: partitions}
	rb.topics[name] = t
	return t, nil
}

// Close implements Bus.
func (rb *RemoteBroker) Close() error { return rb.client.Close() }

// RemoteTopic is a TopicHandle over RPC.
type RemoteTopic struct {
	broker *RemoteBroker
	name   string
	parts  int
}

// Name implements TopicHandle.
func (t *RemoteTopic) Name() string { return t.name }

// NumPartitions implements TopicHandle.
func (t *RemoteTopic) NumPartitions() int { return t.parts }

// Append implements TopicHandle.
func (t *RemoteTopic) Append(partition int, key uint64, value []byte) (int64, error) {
	w := codec.NewWriter(32 + len(value))
	w.String(t.name)
	w.Uvarint(uint64(partition))
	w.Uvarint(key)
	w.Bytes32(value)
	resp, err := t.broker.call(t.name, methodAppend, w.Bytes(), t.broker.timeout)
	if err != nil {
		return 0, err
	}
	r := codec.NewReader(resp)
	off := r.Varint()
	return off, r.Err()
}

// AppendBatch implements TopicHandle: the whole batch rides one RPC frame
// and lands under one broker lock pass. It routes through the same
// unknown-topic healing as Append, so a broker restart mid-stream costs a
// re-create plus one retry, not a lost batch.
func (t *RemoteTopic) AppendBatch(partition int, recs []BatchRecord) (int64, error) {
	if len(recs) == 0 {
		return t.NextOffset(partition), nil
	}
	w := codec.GetWriter()
	w.String(t.name)
	w.Uvarint(uint64(partition))
	w.Uvarint(uint64(len(recs)))
	for i := range recs {
		w.Uvarint(recs[i].Key)
		w.Bytes32(recs[i].Value)
	}
	resp, err := t.broker.call(t.name, methodAppendBatch, w.Bytes(), t.broker.timeout)
	codec.PutWriter(w)
	if err != nil {
		return 0, err
	}
	r := codec.NewReader(resp)
	off := r.Varint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return off, r.Finish()
}

// AppendByKey implements TopicHandle with the same routing hash as the
// local broker.
func (t *RemoteTopic) AppendByKey(key uint64, value []byte) (int64, error) {
	return t.Append(int(hashPartition(key, t.parts)), key, value)
}

// NextOffset implements TopicHandle.
func (t *RemoteTopic) NextOffset(partition int) int64 {
	next, _, _ := t.meta(partition)
	return next
}

// EndOffset implements TopicHandle (== NextOffset; see Topic.EndOffset).
func (t *RemoteTopic) EndOffset(partition int) int64 {
	return t.NextOffset(partition)
}

// Depth implements TopicHandle.
func (t *RemoteTopic) Depth(partition int) int64 {
	_, depth, _ := t.meta(partition)
	return depth
}

// CommittedOffset implements TopicHandle (-1 while no consumer committed,
// and also -1 when the broker is unreachable — an unknown lag must not read
// as zero lag).
func (t *RemoteTopic) CommittedOffset(partition int) int64 {
	_, _, committed := t.meta(partition)
	return committed
}

func (t *RemoteTopic) meta(partition int) (next, depth, committed int64) {
	w := codec.NewWriter(32)
	w.String(t.name)
	w.Uvarint(uint64(partition))
	resp, err := t.broker.call(t.name, methodMeta, w.Bytes(), t.broker.timeout)
	if err != nil {
		return 0, 0, -1
	}
	r := codec.NewReader(resp)
	return r.Varint(), r.Varint(), r.Varint()
}

// OpenConsumer implements TopicHandle.
func (t *RemoteTopic) OpenConsumer(partition int, from int64) Cursor {
	return &RemoteConsumer{topic: t, partition: partition, offset: from}
}

// RemoteConsumer is a Cursor over RPC with long-poll fetches.
type RemoteConsumer struct {
	topic     *RemoteTopic
	partition int
	offset    int64
}

// Poll implements Cursor. Waits longer than the broker's server-side cap
// are satisfied by re-issuing capped fetches until data arrives or the wait
// is spent, so a long poll never parks a broker handler past the cap (which
// would stall broker shutdown).
func (c *RemoteConsumer) Poll(max int, wait time.Duration) ([]Record, error) {
	deadline := time.Now().Add(wait)
	for {
		chunk := wait
		if chunk > maxServerFetchWait {
			if chunk = time.Until(deadline); chunk > maxServerFetchWait {
				chunk = maxServerFetchWait
			}
		}
		recs, err := c.pollOnce(max, chunk)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if wait <= maxServerFetchWait || !time.Now().Before(deadline) {
			return nil, nil
		}
	}
}

func (c *RemoteConsumer) pollOnce(max int, wait time.Duration) ([]Record, error) {
	if wait < 0 {
		wait = 0
	}
	w := codec.NewWriter(40)
	w.String(c.topic.name)
	w.Uvarint(uint64(c.partition))
	w.Varint(c.offset)
	w.Uvarint(uint64(max))
	w.Uvarint(uint64(wait / time.Millisecond))
	resp, err := c.topic.broker.call(c.topic.name, methodFetch, w.Bytes(), wait+c.topic.broker.timeout)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(resp)
	next := r.Varint()
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	var recs []Record
	for i := 0; i < n; i++ {
		rec := Record{Offset: r.Varint(), Key: r.Uvarint(), Ts: r.Varint()}
		val := r.Bytes32()
		v := make([]byte, len(val))
		copy(v, val)
		rec.Value = v
		recs = append(recs, rec)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	c.offset = next
	return recs, nil
}

// Offset implements Cursor.
func (c *RemoteConsumer) Offset() int64 { return c.offset }

// Committed implements Cursor (see Consumer.Committed).
func (c *RemoteConsumer) Committed() int64 { return c.offset }

// Commit implements Cursor: pushes the cursor position to the broker.
func (c *RemoteConsumer) Commit() error {
	w := codec.NewWriter(40)
	w.String(c.topic.name)
	w.Uvarint(uint64(c.partition))
	w.Varint(c.offset)
	_, err := c.topic.broker.call(c.topic.name, methodCommit, w.Bytes(), c.topic.broker.timeout)
	return err
}

// SeekTo implements Cursor.
func (c *RemoteConsumer) SeekTo(offset int64) { c.offset = offset }

// Lag implements Cursor (EndOffset - Committed).
func (c *RemoteConsumer) Lag() int64 {
	return c.topic.EndOffset(c.partition) - c.offset
}

var (
	_ Bus         = (*RemoteBroker)(nil)
	_ TopicHandle = (*RemoteTopic)(nil)
	_ Cursor      = (*RemoteConsumer)(nil)
)
