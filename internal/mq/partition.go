package mq

import (
	"bytes"
	"sync"
	"time"

	"helios/internal/faultpoint"
)

// partition is one append-only, strictly ordered log. Records are held in a
// ring-ish slice window [head, next); retention truncates from the front.
type partition struct {
	mu     sync.Mutex
	cond   *sync.Cond
	topic  string
	idx    int
	broker *Broker

	records []Record // records[i] has offset head+i
	head    int64    // offset of records[0]
	next    int64    // offset of the next append
	// committed is the highest offset a consumer has reported back via
	// Commit (Kafka convention: one past the last processed record), or -1
	// while no consumer has ever committed. Broker-side lag — the basis for
	// ingestion backpressure — is next - committed.
	committed int64
	// hw is the high watermark: consumers only see offsets below it. -1
	// (the unreplicated default) disables the gate entirely; on a
	// replicated broker it tracks the highest offset known to be held by a
	// replication quorum, so a failover can never un-deliver a record a
	// consumer already fetched.
	hw     int64
	closed bool

	seg *segment // nil when memory-only
}

func newPartition(b *Broker, topic string, idx int) *partition {
	p := &partition{topic: topic, idx: idx, broker: b, committed: -1, hw: -1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *partition) append(key uint64, value []byte) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	rec := Record{Offset: p.next, Key: key, Value: value, Ts: time.Now().UnixNano()}
	// Durability before visibility: the segment write — and, under
	// FsyncAlways, the fsync — must succeed before the record enters the
	// in-memory window, so a torn write can never surface an offset to
	// consumers that a restart would lose.
	if p.seg != nil {
		if err := p.seg.append(rec); err != nil {
			return 0, err
		}
		if p.broker.opts.Fsync == FsyncAlways {
			if err := p.seg.sync(); err != nil {
				return 0, err
			}
		}
	}
	p.records = append(p.records, rec)
	p.next++
	p.trimLocked()
	p.cond.Broadcast()
	return rec.Offset, nil
}

// appendBatch lands recs contiguously under one lock pass: one timestamp,
// one fsync (under FsyncAlways), one retention trim, one broadcast for the
// whole batch. Like append, segment bytes land before the records become
// visible; a mid-batch write failure leaves the in-memory log untouched
// (the orphaned segment prefix is reconciled by replay's rewind handling).
func (p *partition) appendBatch(recs []BatchRecord) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	first := p.next
	now := time.Now().UnixNano()
	if p.seg != nil {
		off := first
		for _, br := range recs {
			if err := p.seg.append(Record{Offset: off, Key: br.Key, Value: br.Value, Ts: now}); err != nil {
				return 0, err
			}
			off++
		}
		if p.broker.opts.Fsync == FsyncAlways {
			if err := p.seg.sync(); err != nil {
				return 0, err
			}
		}
	}
	for _, br := range recs {
		p.records = append(p.records, Record{Offset: p.next, Key: br.Key, Value: br.Value, Ts: now})
		p.next++
	}
	p.trimLocked()
	p.cond.Broadcast()
	return first, nil
}

// appendAt applies a leader's replicate frame: records carrying explicit
// offsets, contiguous from first. Offsets already present are verified
// against the frame — a matching record is skipped (frames race and
// overlap; re-application is idempotent), while a mismatch means this
// replica's log diverged from the leader's (a revived ex-leader whose
// un-acked tail survived, e.g. restart-pinned under its own high
// watermark): the log truncates to the divergence point and takes the
// leader's records, mirroring Kafka's leader-epoch truncation. A frame
// starting past the log end applies nothing — the returned next (< first)
// tells the leader where to resend from. Returns the new log end and how
// many records were actually applied.
func (p *partition) appendAt(first int64, recs []Record) (int64, int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, 0, ErrClosed
	}
	if first > p.next {
		return p.next, 0, nil
	}
	applied := 0
	for _, rec := range recs {
		if rec.Offset < p.head {
			continue // trimmed past: nothing retained to verify against
		}
		if rec.Offset < p.next {
			have := &p.records[int(rec.Offset-p.head)]
			if have.Key == rec.Key && have.Ts == rec.Ts && bytes.Equal(have.Value, rec.Value) {
				continue
			}
			// Divergence: everything from this offset on is the abandoned
			// tail of a dead leadership — never quorum-acked under the
			// current one. Drop it (clamping a restart-inflated high
			// watermark with it) and append the authoritative records; the
			// rewound segment frames are reconciled by replay's rewind
			// handling, same as a demotion's.
			p.records = p.records[:int(rec.Offset-p.head)]
			p.next = rec.Offset
			if p.hw > p.next {
				p.hw = p.next
			}
		}
		if p.seg != nil {
			if err := p.seg.append(rec); err != nil {
				return p.next, applied, err
			}
		}
		p.records = append(p.records, rec)
		p.next++
		applied++
	}
	if applied > 0 && p.seg != nil && p.broker.opts.Fsync == FsyncAlways {
		if err := p.seg.sync(); err != nil {
			return p.next, applied, err
		}
	}
	if applied > 0 {
		p.trimLocked()
		p.cond.Broadcast()
	}
	return p.next, applied, nil
}

// trimLocked applies the retention bound. Caller holds p.mu.
func (p *partition) trimLocked() {
	if retain := p.broker.opts.RetainRecords; retain > 0 && len(p.records) > 2*retain {
		// Amortized trim: let the window grow to 2× the retention bound,
		// then copy the newest `retain` records into a fresh slice (so the
		// old backing array stops pinning dropped payloads). This keeps
		// append O(1) amortized instead of O(retain) per append.
		drop := len(p.records) - retain
		kept := make([]Record, retain)
		copy(kept, p.records[drop:])
		p.records = kept
		p.head += int64(drop)
	}
}

// readRange returns the retained records in [from, to) for replication
// catch-up. The second result is false when `from` has been trimmed past —
// the follower is too far behind the retained window to heal by resend.
// The returned slice aliases immutable records and is read-only.
func (p *partition) readRange(from, to int64) ([]Record, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < p.head {
		return nil, false
	}
	if to > p.next {
		to = p.next
	}
	if from >= to {
		return nil, true
	}
	start := int(from - p.head)
	end := int(to - p.head)
	return p.records[start:end:end], true
}

// reportOffset is the offset this replica advertises in its
// replication-status report to the coordinator. A partition the broker
// believes it leads advertises the high watermark — the quorum-acked
// position — not the raw log end: the un-acked tail above hw is abandoned
// on demotion, so counting it would let a revived ex-leader look more
// caught-up in a later failover than a follower that actually holds every
// acked record. A followed partition advertises the log end, which on a
// follower is exactly its replication progress.
func (p *partition) reportOffset(leading bool) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if leading && p.hw >= 0 && p.hw < p.next {
		return p.hw
	}
	return p.next
}

// advanceHW raises the high watermark after a quorum ack, waking blocked
// fetches. No-op on an unreplicated partition (hw == -1).
func (p *partition) advanceHW(hw int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hw < 0 || hw <= p.hw {
		return
	}
	if hw > p.next {
		hw = p.next
	}
	p.hw = hw
	p.cond.Broadcast()
}

// promote exposes the whole log: promotion only ever targets the
// most-caught-up live replica, which by the quorum rule holds every record
// any producer was ever acked.
func (p *partition) promote() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hw < 0 {
		return
	}
	p.hw = p.next
	p.cond.Broadcast()
}

// demote abandons the unreplicated tail above the high watermark when
// leadership moves away: those records were never quorum-acked to any
// producer, and the new leader's stream will overwrite the offsets (the
// duplicate frames left in the segment are reconciled by replay's rewind
// handling on restart).
func (p *partition) demote() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hw < 0 || p.hw >= p.next {
		return
	}
	cut := p.hw
	if cut < p.head {
		cut = p.head
	}
	p.records = p.records[:int(cut-p.head)]
	p.next = cut
}

// fetch returns up to max records starting at offset, blocking up to wait
// for data. A fetch below the retained head snaps forward to the head; on
// a replicated broker delivery stops at the high watermark. The returned
// records alias the partition's retained window and must be treated as
// read-only.
func (p *partition) fetch(offset int64, max int, wait time.Duration) ([]Record, int64, error) {
	if err := faultpoint.Inject("mq.fetch"); err != nil {
		return nil, offset, err
	}
	if max <= 0 {
		max = 1
	}
	deadline := time.Now().Add(wait)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if offset < p.head {
			offset = p.head
		}
		limit := p.next
		if p.hw >= 0 && p.hw < limit {
			limit = p.hw
		}
		if offset < limit {
			start := int(offset - p.head)
			end := start + max
			if lim := int(limit - p.head); end > lim {
				end = lim
			}
			out := p.records[start:end:end]
			p.broker.Fetched.Add(int64(len(out)))
			return out, offset + int64(len(out)), nil
		}
		if p.closed {
			return nil, offset, ErrClosed
		}
		if wait <= 0 {
			return nil, offset, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, offset, nil
		}
		// cond has no timed wait; poke waiters periodically from a timer.
		t := time.AfterFunc(remaining, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		p.cond.Wait()
		t.Stop()
	}
}

func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	if p.seg != nil {
		return p.seg.close()
	}
	return nil
}
