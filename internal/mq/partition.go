package mq

import (
	"sync"
	"time"

	"helios/internal/faultpoint"
)

// partition is one append-only, strictly ordered log. Records are held in a
// ring-ish slice window [head, next); retention truncates from the front.
type partition struct {
	mu     sync.Mutex
	cond   *sync.Cond
	topic  string
	idx    int
	broker *Broker

	records []Record // records[i] has offset head+i
	head    int64    // offset of records[0]
	next    int64    // offset of the next append
	// committed is the highest offset a consumer has reported back via
	// Commit (Kafka convention: one past the last processed record), or -1
	// while no consumer has ever committed. Broker-side lag — the basis for
	// ingestion backpressure — is next - committed.
	committed int64
	closed    bool

	seg *segment // nil when memory-only
}

func newPartition(b *Broker, topic string, idx int) *partition {
	p := &partition{topic: topic, idx: idx, broker: b, committed: -1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *partition) append(key uint64, value []byte) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	rec := Record{Offset: p.next, Key: key, Value: value, Ts: time.Now().UnixNano()}
	p.records = append(p.records, rec)
	p.next++
	if p.seg != nil {
		if err := p.seg.append(rec); err != nil {
			return 0, err
		}
	}
	if retain := p.broker.opts.RetainRecords; retain > 0 && len(p.records) > 2*retain {
		// Amortized trim: let the window grow to 2× the retention bound,
		// then copy the newest `retain` records into a fresh slice (so the
		// old backing array stops pinning dropped payloads). This keeps
		// append O(1) amortized instead of O(retain) per append.
		drop := len(p.records) - retain
		kept := make([]Record, retain)
		copy(kept, p.records[drop:])
		p.records = kept
		p.head += int64(drop)
	}
	p.cond.Broadcast()
	return rec.Offset, nil
}

// appendBatch lands recs contiguously under one lock pass: one timestamp,
// one retention trim, one broadcast for the whole batch.
func (p *partition) appendBatch(recs []BatchRecord) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	first := p.next
	now := time.Now().UnixNano()
	for _, br := range recs {
		rec := Record{Offset: p.next, Key: br.Key, Value: br.Value, Ts: now}
		p.records = append(p.records, rec)
		p.next++
		if p.seg != nil {
			if err := p.seg.append(rec); err != nil {
				return 0, err
			}
		}
	}
	if retain := p.broker.opts.RetainRecords; retain > 0 && len(p.records) > 2*retain {
		// Same amortized trim as append: grow to 2× the bound, then copy
		// the newest retain records off the old backing array.
		drop := len(p.records) - retain
		kept := make([]Record, retain)
		copy(kept, p.records[drop:])
		p.records = kept
		p.head += int64(drop)
	}
	p.cond.Broadcast()
	return first, nil
}

// fetch returns up to max records starting at offset, blocking up to wait
// for data. A fetch below the retained head snaps forward to the head. The
// returned records alias the partition's retained window and must be
// treated as read-only.
func (p *partition) fetch(offset int64, max int, wait time.Duration) ([]Record, int64, error) {
	if err := faultpoint.Inject("mq.fetch"); err != nil {
		return nil, offset, err
	}
	if max <= 0 {
		max = 1
	}
	deadline := time.Now().Add(wait)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if offset < p.head {
			offset = p.head
		}
		if offset < p.next {
			start := int(offset - p.head)
			end := start + max
			if end > len(p.records) {
				end = len(p.records)
			}
			out := p.records[start:end:end]
			p.broker.Fetched.Add(int64(len(out)))
			return out, offset + int64(len(out)), nil
		}
		if p.closed {
			return nil, offset, ErrClosed
		}
		if wait <= 0 {
			return nil, offset, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, offset, nil
		}
		// cond has no timed wait; poke waiters periodically from a timer.
		t := time.AfterFunc(remaining, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		p.cond.Wait()
		t.Stop()
	}
}

func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	if p.seg != nil {
		return p.seg.close()
	}
	return nil
}
