package mq

import (
	"fmt"
	"testing"
	"time"
)

func TestCommitTracksProgress(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := topic.CommittedOffset(0); got != -1 {
		t.Fatalf("fresh partition committed = %d, want -1", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := topic.Append(0, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := topic.NewConsumer(0, 0)
	if _, err := c.Poll(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := topic.CommittedOffset(0); got != 5 {
		t.Fatalf("committed = %d, want 5", got)
	}
	// Stale commits never move the offset backwards.
	if err := topic.Commit(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := topic.CommittedOffset(0); got != 5 {
		t.Fatalf("committed after stale commit = %d, want 5", got)
	}
	// Commits beyond the log end clamp to it.
	if err := topic.Commit(0, 100); err != nil {
		t.Fatal(err)
	}
	if got := topic.CommittedOffset(0); got != 5 {
		t.Fatalf("committed after overshoot = %d, want 5", got)
	}
}

func TestLagBoundBackpressure(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.SetLagBound("t", 3)
	c := topic.NewConsumer(0, 0)
	if err := c.Commit(); err != nil { // committed = 0: lag now measurable
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := topic.Append(0, 1, []byte("x")); err != nil {
			t.Fatalf("append %d under bound failed: %v", i, err)
		}
	}
	_, err = topic.Append(0, 1, []byte("x"))
	if !IsBackpressure(err) {
		t.Fatalf("append past lag bound returned %v, want backpressure", err)
	}
	// Catching up and committing clears the condition.
	if _, err := c.Poll(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := topic.Append(0, 1, []byte("x")); err != nil {
		t.Fatalf("append after catch-up failed: %v", err)
	}
}

// A topic with a bound but no committed consumer is exempt: with no lag
// signal there is nothing to bound (only depth), and shedding there would
// deadlock bootstrap (producers first, consumers later).
func TestLagBoundExemptWithoutCommits(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	b.SetLagBound("t", 2) // set before creation: must stick to the new topic
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := topic.Append(0, 1, []byte("x")); err != nil {
			t.Fatalf("append %d with no consumer failed: %v", i, err)
		}
	}
}

func TestRemoteCommitAndBackpressure(t *testing.T) {
	b, rb, done := startRemote(t)
	defer done()
	topic, err := rb.OpenTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := topic.CommittedOffset(0); got != -1 {
		t.Fatalf("remote committed = %d, want -1", got)
	}
	c := topic.OpenConsumer(0, 0)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	local, _ := b.Topic("t")
	if got := local.CommittedOffset(0); got != 0 {
		t.Fatalf("broker-side committed = %d, want 0", got)
	}
	b.SetLagBound("t", 2)
	for i := 0; i < 2; i++ {
		if _, err := topic.Append(0, 1, []byte("x")); err != nil {
			t.Fatalf("append %d under bound failed: %v", i, err)
		}
	}
	_, err = topic.Append(0, 1, []byte("x"))
	if !IsBackpressure(err) {
		t.Fatalf("remote append past bound returned %v, want backpressure", err)
	}
	// Poll + commit over RPC clears it.
	if _, err := c.Poll(10, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := topic.CommittedOffset(0); got != 2 {
		t.Fatalf("remote committed after poll = %d, want 2", got)
	}
	if _, err := topic.Append(0, 1, []byte("x")); err != nil {
		t.Fatalf("append after catch-up failed: %v", err)
	}
}

// Lag bounds apply per partition: one lagging partition must not shed
// appends routed to a healthy one.
func TestLagBoundPerPartition(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	b.SetLagBound("t", 1)
	c0 := topic.NewConsumer(0, 0)
	if err := c0.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := topic.Append(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := topic.Append(0, 1, []byte("x")); !IsBackpressure(err) {
		t.Fatalf("partition 0 append = %v, want backpressure", err)
	}
	// Partition 1 has no commits at all: exempt.
	for i := 0; i < 4; i++ {
		if _, err := topic.Append(1, 1, []byte("x")); err != nil {
			t.Fatal(fmt.Errorf("partition 1 append %d: %w", i, err))
		}
	}
}
