// Package mq_test exercises the cluster client against the real failover
// controller — an import the in-package tests cannot make (coord imports
// mq).
package mq_test

import (
	"testing"
	"time"

	"helios/internal/clock"
	"helios/internal/coord"
	"helios/internal/mq"
	"helios/internal/rpc"
)

// TestClusterOpenTopicPartitionMismatch mirrors broker-side CreateTopic
// semantics on the client: reopening a cached topic with a different
// partition count must fail rather than hand back a handle whose
// AppendByKey hashing disagrees with the broker layout.
func TestClusterOpenTopicPartitionMismatch(t *testing.T) {
	b := mq.NewBroker(mq.Options{})
	defer b.Close()
	srv := rpc.NewServer()
	mq.ServeBroker(b, srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := mq.DialCluster([]string{addr}, addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.OpenTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenTopic("t", 3); err == nil {
		t.Fatal("reopening with a different partition count must fail")
	}
	tp, err := cl.OpenTopic("t", 2)
	if err != nil || tp.NumPartitions() != 2 {
		t.Fatalf("matching reopen: parts=%v err=%v", tp, err)
	}
}

// TestClusterRidesOutLeaderFailover is the regression test for the
// re-resolution contract: a cluster client (and its consumers) must
// survive a partition leader dying — callLeader re-resolves the map from
// the coordinator and retries against the promoted follower — without the
// caller ever seeing an error, and without losing any quorum-acked record.
func TestClusterRidesOutLeaderFailover(t *testing.T) {
	// Replica set of 3, quorum 2.
	const replicas = 3
	brokers := make([]*mq.Broker, replicas)
	srvs := make([]*rpc.Server, replicas)
	addrs := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		brokers[i] = mq.NewBroker(mq.Options{})
		srvs[i] = rpc.NewServer()
		mq.ServeBroker(brokers[i], srvs[i])
		mq.ServeReplication(brokers[i], srvs[i])
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		defer srvs[i].Close()
		defer brokers[i].Close()
	}
	for i := range brokers {
		cfg := mq.ReplicationConfig{Self: i, Peers: addrs, Quorum: 2, Timeout: time.Second}
		if err := brokers[i].EnableReplication(cfg); err != nil {
			t.Fatal(err)
		}
	}

	// Coordinator on a fake clock so leader death is a clock advance, not
	// a sleep; the failover controller serves the partition map over RPC.
	fk := clock.NewFake()
	co := coord.New(nil).WithClock(fk)
	fo := coord.NewFailover(coord.FailoverConfig{
		Coordinator: co,
		Peers:       replicas,
		DeadAfter:   time.Second,
		Notify: func(peer int, pm mq.PartMap) error {
			brokers[peer].ApplyPartMap(pm)
			return nil
		},
	})
	coordSrv := rpc.NewServer()
	fo.ServeRPC(coordSrv)
	coordAddr, err := coordSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coordSrv.Close()

	cl, err := mq.DialCluster(addrs, coordAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tp, err := cl.OpenTopic("t", replicas)
	if err != nil {
		t.Fatal(err)
	}

	// Partition 1's default leader is broker 1. A quorum-acked record
	// lands and is consumed before the failure.
	if _, err := tp.Append(1, 7, []byte("before")); err != nil {
		t.Fatal(err)
	}
	cur := tp.OpenConsumer(1, 0)
	recs, err := cur.Poll(10, time.Second)
	if err != nil || len(recs) != 1 || string(recs[0].Value) != "before" {
		t.Fatalf("pre-failover poll: %v %v", recs, err)
	}

	// Every replica reports once (the controller only fails over leaders
	// it has seen alive), then the leader dies: endpoint closed, reports
	// stop, survivors keep beating past the death threshold.
	for i := range brokers {
		fo.Report(i, brokers[i].ReplOffsets())
	}
	srvs[1].Close()
	fk.Advance(2 * time.Second)
	fo.Report(0, brokers[0].ReplOffsets())
	fo.Report(2, brokers[2].ReplOffsets())
	fo.Step()
	pm := fo.PartMap()
	if got := pm.Leader("t", 1, replicas); got == 1 {
		t.Fatal("controller never promoted a replacement leader")
	}

	// The same topic handle must ride out the failover: the client's
	// cached map still names the corpse, so the first attempt fails,
	// re-resolves from the coordinator, and lands on the promoted leader.
	if _, err := tp.Append(1, 7, []byte("after")); err != nil {
		t.Fatalf("append across failover: %v", err)
	}
	// The standing consumer rides it out the same way — and the acked
	// pre-failover record is never un-delivered or lost.
	deadline := time.Now().Add(5 * time.Second)
	var got []mq.Record
	for time.Now().Before(deadline) && len(got) == 0 {
		recs, err := cur.Poll(10, 200*time.Millisecond)
		if err != nil {
			if mq.IsFatal(err) {
				t.Fatalf("poll loop killed by failover: %v", err)
			}
			continue
		}
		got = append(got, recs...)
	}
	if len(got) != 1 || string(got[0].Value) != "after" {
		t.Fatalf("post-failover poll: %v", got)
	}
	if fo.Failovers.Value() < 1 {
		t.Fatal("failover counter never incremented")
	}
}
