package mq

import "time"

// Consumer reads one partition of one topic with a private offset cursor,
// matching how each Helios worker owns exactly one input partition (§4.1:
// updates and requests are evenly sliced, "each worker exclusively handles
// one partition").
type Consumer struct {
	topic     *Topic
	partition int
	offset    int64
}

// NewConsumer opens a cursor on a partition starting at `from` (use 0 for
// the earliest retained record).
func (t *Topic) NewConsumer(partition int, from int64) *Consumer {
	return &Consumer{topic: t, partition: partition, offset: from}
}

// Poll fetches up to max records, blocking up to wait when the partition is
// empty. It returns nil on timeout and ErrClosed after broker shutdown. The
// cursor advances past the returned records.
func (c *Consumer) Poll(max int, wait time.Duration) ([]Record, error) {
	st := c.topic.broker.stFetch.Load()
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	recs, next, err := c.topic.parts[c.partition].fetch(c.offset, max, wait)
	if st != nil {
		// The mq.fetch stage includes block time, bounded by the caller's
		// poll wait — an idle consumer reads as a flat histogram at ~wait.
		st.Observe(time.Since(start).Nanoseconds(), 0)
	}
	c.offset = next
	return recs, err
}

// Offset returns the cursor position (the offset the next Poll starts at).
func (c *Consumer) Offset() int64 { return c.offset }

// Committed returns the consumer's committed offset in Kafka's
// convention: the offset of the next record to be read, i.e. one past
// the last delivered record. A consumer that has delivered records
// [0, k) reports Committed() == k — NOT k-1; lag is then
// EndOffset - Committed with no off-by-one adjustment.
func (c *Consumer) Committed() int64 { return c.offset }

// Commit pushes the cursor position to the broker's per-partition commit
// record (see Topic.Commit).
func (c *Consumer) Commit() error {
	return c.topic.Commit(c.partition, c.offset)
}

// SeekTo moves the cursor.
func (c *Consumer) SeekTo(offset int64) { c.offset = offset }

// Lag reports how many records remain ahead of the cursor
// (EndOffset - Committed).
func (c *Consumer) Lag() int64 {
	return c.topic.EndOffset(c.partition) - c.offset
}
