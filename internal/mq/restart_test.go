package mq

import (
	"fmt"
	"testing"
	"time"

	"helios/internal/faultpoint"
	"helios/internal/rpc"
)

// serveOn exposes b on addr ("" = ephemeral) and returns the server and
// bound address, retrying briefly so a just-released port can be rebound.
func serveOn(t *testing.T, b *Broker, addr string) (*rpc.Server, string) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var err error
	for i := 0; i < 100; i++ {
		srv := rpc.NewServer()
		ServeBroker(b, srv)
		var bound string
		bound, err = srv.Listen(addr)
		if err == nil {
			return srv, bound
		}
		srv.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("listen %s: %v", addr, err)
	return nil, ""
}

// TestRemoteBrokerSurvivesServerRestart is the regression test for the
// failure this PR exists to fix: before the reconnecting client, a broker
// listener restart permanently wedged every RemoteBroker — appends failed
// forever and polls never returned data again.
func TestRemoteBrokerSurvivesServerRestart(t *testing.T) {
	b := NewBroker(Options{})
	defer b.Close()
	srv1, addr := serveOn(t, b, "")

	rb, err := DialBroker(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	topic, err := rb.OpenTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topic.Append(0, 1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	cur := topic.OpenConsumer(0, 0)
	recs, err := cur.Poll(10, 100*time.Millisecond)
	if err != nil || len(recs) != 1 {
		t.Fatalf("poll before restart: %d recs, %v", len(recs), err)
	}

	// Kill the listener mid-run. The broker object (the retained log)
	// survives, modeling a broker process restart with a durable -dir.
	srv1.Close()

	srv2, _ := serveOn(t, b, addr)
	defer srv2.Close()

	// Append and poll must heal without any new DialBroker.
	if _, err := topic.Append(0, 2, []byte("after")); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
	recs, err = cur.Poll(10, time.Second)
	if err != nil || len(recs) != 1 || string(recs[0].Value) != "after" {
		t.Fatalf("poll after restart: %v recs, %v", recs, err)
	}
	if rb.Client().Reconnects.Value() == 0 {
		t.Fatal("no reconnect recorded")
	}
}

// TestRemoteBrokerReopensTopicAfterColdRestart models a broker process
// that comes back with an empty topic table (fresh Broker object): the
// client re-creates the topic on "unknown topic" and carries on.
func TestRemoteBrokerReopensTopicAfterColdRestart(t *testing.T) {
	dir := t.TempDir()
	b1 := NewBroker(Options{Dir: dir})
	srv1, addr := serveOn(t, b1, "")

	rb, err := DialBroker(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	topic, err := rb.OpenTopic("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := topic.Append(i%2, uint64(i), []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Cold restart: new Broker over the same dir, same address, no topics
	// until someone re-creates them.
	srv1.Close()
	b1.Close()
	b2 := NewBroker(Options{Dir: dir})
	defer b2.Close()
	srv2, _ := serveOn(t, b2, addr)
	defer srv2.Close()

	// The append hits "unknown topic", reopens (which replays the
	// segment), and lands at the offset after the replayed records.
	off, err := topic.Append(0, 8, []byte("post"))
	if err != nil {
		t.Fatalf("append after cold restart: %v", err)
	}
	if off != 2 {
		t.Fatalf("append offset after replay = %d, want 2", off)
	}
	// A consumer resuming from 0 replays the retained records too.
	cur := topic.OpenConsumer(0, 0)
	recs, err := cur.Poll(10, time.Second)
	if err != nil || len(recs) != 3 {
		t.Fatalf("replay poll: %d recs, %v", len(recs), err)
	}
}

func TestFaultpointsOnAppendAndFetch(t *testing.T) {
	defer faultpoint.Reset()
	b := NewBroker(Options{})
	defer b.Close()
	topic, err := b.CreateTopic("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.ErrorOnce("mq.append")
	if _, err := topic.Append(0, 1, []byte("x")); err == nil {
		t.Fatal("armed append should fail")
	}
	if _, err := topic.Append(0, 1, []byte("x")); err != nil {
		t.Fatalf("append after budget: %v", err)
	}
	faultpoint.ErrorOnce("mq.fetch")
	cur := topic.OpenConsumer(0, 0)
	if _, err := cur.Poll(1, 0); err == nil {
		t.Fatal("armed fetch should fail")
	}
	if recs, err := cur.Poll(1, 0); err != nil || len(recs) != 1 {
		t.Fatalf("fetch after budget: %d recs, %v", len(recs), err)
	}
}
