package rpc

import (
	"errors"
	"testing"
	"time"
)

// A request frame carries the caller's timeout as a deadline budget, and the
// handler sees it as an absolute deadline on its own clock.
func TestDeadlineBudgetReachesHandler(t *testing.T) {
	s := NewServer()
	got := make(chan time.Duration, 1)
	s.HandleCtx("probe", func(ctx Ctx, req []byte) ([]byte, error) {
		got <- ctx.Remaining(time.Now())
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("probe", nil, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rem := <-got
	if rem <= 0 || rem > 5*time.Second {
		t.Fatalf("remaining budget = %v, want in (0, 5s]", rem)
	}
}

// Untimed calls carry no budget: the handler sees a zero deadline.
func TestZeroTimeoutMeansNoDeadline(t *testing.T) {
	s := NewServer()
	got := make(chan Ctx, 1)
	s.HandleCtx("probe", func(ctx Ctx, req []byte) ([]byte, error) {
		got <- ctx
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("probe", nil, 0); err != nil {
		t.Fatal(err)
	}
	ctx := <-got
	if !ctx.Deadline.IsZero() {
		t.Fatalf("deadline = %v, want zero", ctx.Deadline)
	}
	if ctx.Expired(time.Now().Add(time.Hour)) {
		t.Fatal("zero deadline reported expired")
	}
}

// A request whose budget is already spent when the server gets to it is
// refused with a typed ErrDeadlineExceeded — the handler never runs.
func TestExpiredRequestFailsFastWithoutHandler(t *testing.T) {
	s := NewServer()
	// The server-side delay consumes more than the call budget before
	// dispatch, so the request is dead on arrival at the handler stage.
	s.Delay = 50 * time.Millisecond
	ran := make(chan struct{}, 1)
	s.Handle("work", func(req []byte) ([]byte, error) {
		ran <- struct{}{}
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Budget smaller than the server delay. The client's own timer also
	// fires; either way the error must classify as a deadline error.
	_, err = c.Call("work", nil, 10*time.Millisecond)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	select {
	case <-ran:
		t.Fatal("handler ran on an expired request")
	case <-time.After(100 * time.Millisecond):
	}
	if s.Expired.Value() == 0 {
		t.Fatal("server did not count the expired request")
	}
}

// A handler that bails out with ErrDeadlineExceeded stays typed across the
// hop: the client sees ErrDeadlineExceeded, not a RemoteError.
func TestHandlerDeadlineErrorStaysTyped(t *testing.T) {
	s := NewServer()
	s.Handle("work", func(req []byte) ([]byte, error) {
		return nil, ErrDeadlineExceeded
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("work", nil, time.Second)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatalf("deadline error arrived as RemoteError %q", re.Msg)
	}
}

// ErrTimeout (single-attempt expiry) classifies as a deadline error and is
// not retried even with a retry budget.
func TestTimeoutClassifiesAsDeadline(t *testing.T) {
	if !errors.Is(ErrTimeout, ErrDeadlineExceeded) {
		t.Fatal("ErrTimeout does not wrap ErrDeadlineExceeded")
	}
	if retryable(ErrTimeout) || retryable(ErrDeadlineExceeded) {
		t.Fatal("deadline errors must not be retryable")
	}
}

// The timeout is a total budget across retry attempts, not a per-attempt
// allowance: with retries enabled against a down endpoint, the call returns
// once the budget is spent instead of waiting attempts × timeout.
func TestRetriesShareOneBudget(t *testing.T) {
	// Nothing listens on this address: every attempt fails at dial.
	c, err := DialOpts("127.0.0.1:1", Options{
		Reconnect:   true,
		RetryBudget: 1000,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call("work", nil, 60*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call to dead endpoint succeeded")
	}
	// Generous bound: far below what 1000 per-attempt timeouts would take,
	// proving the budget is shared.
	if elapsed > 2*time.Second {
		t.Fatalf("call ran %v past its 60ms budget", elapsed)
	}
}
