package rpc

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"helios/internal/clock"
	"helios/internal/faultpoint"
)

// restartServer binds a fresh echo server on addr ("" = ephemeral) and
// returns it with its bound address.
func restartServer(t *testing.T, addr string) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var bound string
	var err error
	// Rebinding a just-closed port can transiently fail; retry briefly.
	for i := 0; i < 100; i++ {
		bound, err = s.Listen(addr)
		if err == nil {
			return s, bound
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("listen %s: %v", addr, err)
	return nil, ""
}

func TestReconnectAcrossServerRestart(t *testing.T) {
	s1, addr := restartServer(t, "")
	c, err := DialOpts(addr, Options{Reconnect: true, RetryBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("echo", []byte("a"), time.Second); err != nil {
		t.Fatal(err)
	}

	s1.Close()
	s2, _ := restartServer(t, addr)
	defer s2.Close()

	resp, err := c.Call("echo", []byte("b"), time.Second)
	if err != nil || !bytes.Equal(resp, []byte("b")) {
		t.Fatalf("call after restart: %q %v", resp, err)
	}
	if c.Reconnects.Value() == 0 {
		t.Fatal("no reconnect counted")
	}
	if TotalReconnects() == 0 {
		t.Fatal("package-wide reconnects not counted")
	}
}

func TestReconnectDialsLazily(t *testing.T) {
	// Reconnect mode must construct even when the target is down, and
	// heal once it comes up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening now

	c, err := DialOpts(addr, Options{
		Reconnect:   true,
		RetryBudget: 50,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("lazy dial should not fail: %v", err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call("echo", []byte("x"), time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	s, _ := restartServer(t, addr)
	defer s.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call after server came up: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call did not recover after server start")
	}
	if c.DialFailures.Value() == 0 || c.Retries.Value() == 0 {
		t.Fatalf("counters: dialFailures=%d retries=%d, want both > 0",
			c.DialFailures.Value(), c.Retries.Value())
	}
}

func TestRetryExhaustion(t *testing.T) {
	defer faultpoint.Reset()
	s, addr := restartServer(t, "")
	defer s.Close()
	c, err := DialOpts(addr, Options{
		Reconnect:   true,
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("echo", nil, time.Second); err != nil {
		t.Fatal(err)
	}

	// Every write attempt fails: the initial try plus 3 retries, then the
	// budget is exhausted and the injected error surfaces.
	faultpoint.ErrorN("rpc.client.write", -1)
	_, err = c.Call("echo", nil, time.Second)
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := c.Retries.Value(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
	if got := faultpoint.Hits("rpc.client.write"); got != 4 {
		t.Fatalf("write attempts = %d, want 4", got)
	}

	// A bounded fault heals within the budget.
	faultpoint.ErrorN("rpc.client.write", 2)
	if _, err := c.Call("echo", nil, time.Second); err != nil {
		t.Fatalf("call with 2 transient faults and budget 3: %v", err)
	}
}

func TestRemoteErrorsAndTimeoutsNotRetried(t *testing.T) {
	s := NewServer()
	var calls sync.Map
	count := func(k string) int64 {
		v, _ := calls.LoadOrStore(k, new(int64))
		*(v.(*int64))++
		return *(v.(*int64))
	}
	s.Handle("fail", func(req []byte) ([]byte, error) {
		count("fail")
		return nil, errors.New("boom")
	})
	s.Handle("slow", func(req []byte) ([]byte, error) {
		count("slow")
		time.Sleep(300 * time.Millisecond)
		return req, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialOpts(addr, Options{Reconnect: true, RetryBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var re *RemoteError
	if _, err := c.Call("fail", nil, time.Second); !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Call("slow", nil, 30*time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if got := c.Retries.Value(); got != 0 {
		t.Fatalf("retries = %d, want 0 (remote errors and timeouts are final)", got)
	}
}

func TestBackoffSequencing(t *testing.T) {
	// A fake clock never advances, so each dial attempt must sleep the
	// full jittered backoff; a recording Sleep captures the sequence.
	var mu sync.Mutex
	var slept []time.Duration
	fc := clock.NewFake()
	c, err := DialOpts("127.0.0.1:1", Options{ // nothing listens on port 1
		Reconnect:   true,
		RetryBudget: 6,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
		Seed:        42,
		Clock:       fc,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call("echo", nil, time.Second); err == nil {
		t.Fatal("call to dead port should fail")
	}

	mu.Lock()
	defer mu.Unlock()
	// 7 dial attempts (1 + 6 retries): no wait before the first, then a
	// backoff before each of the 6 redials.
	if len(slept) != 6 {
		t.Fatalf("recorded %d sleeps (%v), want 6", len(slept), slept)
	}
	// Attempt n's nominal backoff is min(base<<(n-1), max); jitter keeps
	// the wait within [nominal/2, nominal].
	nominal := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, d := range slept {
		if d < nominal[i]/2 || d > nominal[i] {
			t.Fatalf("sleep[%d] = %v, want within [%v, %v]", i, d, nominal[i]/2, nominal[i])
		}
	}
	if got := c.DialFailures.Value(); got != 7 {
		t.Fatalf("dial failures = %d, want 7", got)
	}
}

func TestBackoffJitterVariesWithinBounds(t *testing.T) {
	c := &Client{opts: Options{BackoffBase: 80 * time.Millisecond, BackoffMax: time.Second, Seed: 7}}
	c.opts.fillDefaults()
	c.rng = rand.New(rand.NewSource(7))
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		d := c.backoffLocked(1)
		if d < 40*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("backoff(1) = %v out of [40ms, 80ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant backoff")
	}
}

func TestNonReconnectStaysDead(t *testing.T) {
	s, addr := restartServer(t, "")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("echo", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, _ := restartServer(t, addr)
	defer s2.Close()
	// Even with the server back, a plain-Dial client never reconnects.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Call("echo", nil, 200*time.Millisecond); err == nil {
			t.Fatal("single-connection client resurrected itself")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if c.Reconnects.Value() != 0 {
		t.Fatal("non-reconnect client counted a reconnect")
	}
}

func TestCloseStopsReconnecting(t *testing.T) {
	c, err := DialOpts("127.0.0.1:1", Options{
		Reconnect:   true,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call("echo", nil, time.Second); err != ErrClosed {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
	if c.Close() != nil {
		t.Fatal("double close")
	}
}

func TestServerWriteFaultClosesConn(t *testing.T) {
	defer faultpoint.Reset()
	s, addr := restartServer(t, "")
	defer s.Close()
	c, err := DialOpts(addr, Options{Reconnect: true, RetryBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("echo", nil, time.Second); err != nil {
		t.Fatal(err)
	}

	// A failed response write closes the server side of the connection;
	// the client's readLoop fails fast and the retry heals on a fresh
	// connection instead of waiting out the timeout.
	faultpoint.ErrorOnce("rpc.server.write")
	start := time.Now()
	if _, err := c.Call("echo", nil, 10*time.Second); err != nil {
		t.Fatalf("call should heal via retry: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("recovery waited for the timeout instead of failing fast")
	}
	if s.Errors.Value() == 0 {
		t.Fatal("server write failure not counted in s.Errors")
	}
	if c.Retries.Value() == 0 {
		t.Fatal("client did not retry after server write fault")
	}
}
