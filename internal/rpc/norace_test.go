//go:build !race

package rpc

// raceEnabled reports whether the race detector is on; see race_test.go.
const raceEnabled = false
