package rpc

import (
	"bytes"
	"io"
	"testing"
)

// TestWriteFrameZeroAlloc pins the pooled frame-write path at zero
// steady-state allocations: the header+body staging buffer comes from
// the frame pool, so serializing a frame allocates nothing once the pool
// is warm.
func TestWriteFrameZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	allocs := testing.AllocsPerRun(200, func() {
		if err := writeFrame(io.Discard, frameRequest, 7, 9, 1000, "helios.sample", payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("writeFrame pooled path: %v allocs/op, want 0", allocs)
	}
}

// TestFrameBufPoolRoundTrip writes a frame through the pooled path and
// reads it back with readFramePooled, checking the token discipline:
// the returned buffer token releases cleanly and oversized buffers are
// not pooled.
func TestFrameBufPoolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	if err := writeFrame(&buf, frameRequest, 3, 5, 42, "m", payload); err != nil {
		t.Fatal(err)
	}
	typ, id, trace, budget, method, got, fb, err := readFramePooled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameRequest || id != 3 || trace != 5 || budget != 42 || method != "m" || string(got) != "hello" {
		t.Fatalf("frame round trip: typ=%d id=%d trace=%d budget=%d method=%q payload=%q",
			typ, id, trace, budget, method, got)
	}
	putFrameBuf(fb)

	// Oversized buffers must be dropped, not pooled.
	big := make([]byte, 0, maxPooledFrame+1)
	putFrameBuf(&big)
	for i := 0; i < 100; i++ {
		fb := getFrameBuf(16)
		if cap(*fb) > maxPooledFrame {
			t.Fatalf("oversized frame buf (cap %d) was pooled", cap(*fb))
		}
		putFrameBuf(fb)
	}
}
