package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startEcho(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(req []byte) ([]byte, error) {
		return req, nil
	})
	s.Handle("fail", func(req []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	s.Handle("slow", func(req []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return req, nil
	})
	s.Handle("panic", func(req []byte) ([]byte, error) {
		panic("kaboom")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call("echo", []byte("hello"), time.Second)
	if err != nil || !bytes.Equal(resp, []byte("hello")) {
		t.Fatalf("echo: %q %v", resp, err)
	}
	// Empty payload.
	resp, err = c.Call("echo", nil, time.Second)
	if err != nil || len(resp) != 0 {
		t.Fatalf("empty echo: %q %v", resp, err)
	}
	// Large payload.
	big := bytes.Repeat([]byte{7}, 1<<20)
	resp, err = c.Call("echo", big, 5*time.Second)
	if err != nil || !bytes.Equal(resp, big) {
		t.Fatalf("big echo failed: %v", err)
	}
}

func TestRemoteError(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call("fail", nil, time.Second)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call("nope", nil, time.Second)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call("panic", nil, time.Second); err == nil {
		t.Fatal("panic should surface as error")
	}
	// The connection must survive.
	resp, err := c.Call("echo", []byte("still alive"), time.Second)
	if err != nil || !bytes.Equal(resp, []byte("still alive")) {
		t.Fatalf("connection died after handler panic: %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	start := time.Now()
	_, err := c.Call("slow", nil, 30*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Fatal("timeout returned too late")
	}
}

func TestNoHeadOfLineBlocking(t *testing.T) {
	// A slow call must not delay a fast call on the same connection.
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	done := make(chan struct{})
	go func() {
		c.Call("slow", nil, time.Second)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if _, err := c.Call("echo", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("fast call was blocked behind slow call")
	}
	<-done
}

func TestConcurrentCalls(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				msg := []byte(fmt.Sprintf("g%d-m%d", id, i))
				resp, err := c.Call("echo", msg, 5*time.Second)
				if err != nil || !bytes.Equal(resp, msg) {
					t.Errorf("mismatch: %q vs %q (%v)", resp, msg, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientCloseFailsInflight(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	c, _ := Dial(addr)
	errs := make(chan error, 1)
	go func() {
		_, err := c.Call("slow", nil, 5*time.Second)
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("in-flight call should fail on close")
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight call hung after close")
	}
	if _, err := c.Call("echo", nil, time.Second); err != ErrClosed {
		t.Fatalf("call after close = %v", err)
	}
	if c.Close() != nil {
		t.Fatal("double close")
	}
}

func TestServerCloseFailsClients(t *testing.T) {
	s, addr := startEcho(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call("echo", []byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := c.Call("echo", []byte("x"), time.Second); err == nil {
		t.Fatal("call to closed server should fail")
	}
	if s.Close() != nil {
		t.Fatal("double close")
	}
}

func TestInjectedDelay(t *testing.T) {
	s, addr := startEcho(t)
	defer s.Close()
	s.Delay = 50 * time.Millisecond
	c, _ := Dial(addr)
	defer c.Close()
	start := time.Now()
	if _, err := c.Call("echo", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 45*time.Millisecond {
		t.Fatal("server delay not applied")
	}

	s.Delay = 0
	c.Delay = 30 * time.Millisecond
	start = time.Now()
	c.Call("echo", nil, time.Second)
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("client delay not applied")
	}
}

func TestServerAddr(t *testing.T) {
	s := NewServer()
	if s.Addr() != "" {
		t.Fatal("addr before listen should be empty")
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != addr {
		t.Fatalf("Addr = %q, want %q", s.Addr(), addr)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func BenchmarkCallEcho(b *testing.B) {
	s := NewServer()
	s.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", payload, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallEchoParallel(b *testing.B) {
	s := NewServer()
	s.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Call("echo", payload, 5*time.Second)
		}
	})
}

func TestWriteFrameLimits(t *testing.T) {
	var sink bytes.Buffer
	// Method name too long.
	long := make([]byte, 0x10000)
	if err := writeFrame(&sink, frameRequest, 1, 0, 0, string(long), nil); err == nil {
		t.Fatal("oversized method accepted")
	}
	// Payload beyond maxFrame.
	if err := writeFrame(&sink, frameRequest, 1, 0, 0, "m", make([]byte, maxFrame)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Declared length below the header minimum.
	var buf bytes.Buffer
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, 5)
	buf.Write(hdr)
	buf.Write(make([]byte, 5))
	if _, _, _, _, _, _, err := readFrame(&buf); err == nil {
		t.Fatal("short frame accepted")
	}
	// Method length overrunning the frame.
	buf.Reset()
	body := make([]byte, 27)
	binary.BigEndian.PutUint32(hdr, uint32(len(body)))
	body[0] = frameRequest
	binary.BigEndian.PutUint16(body[25:], 999)
	buf.Write(hdr)
	buf.Write(body)
	if _, _, _, _, _, _, err := readFrame(&buf); err == nil {
		t.Fatal("bad method length accepted")
	}
}

func TestListenAfterCloseFails(t *testing.T) {
	s := NewServer()
	s.Close()
	if _, err := s.Listen("127.0.0.1:0"); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestListenBadAddress(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if _, err := s.Listen("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestTracePropagation(t *testing.T) {
	s := NewServer()
	gotTrace := make(chan uint64, 2)
	s.HandleTraced("traced", func(trace uint64, req []byte) ([]byte, error) {
		gotTrace <- trace
		return req, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const want = uint64(0xfeedface12345678)
	if _, err := c.CallTraced("traced", want, []byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := <-gotTrace; got != want {
		t.Fatalf("handler saw trace %#x, want %#x", got, want)
	}
	// Plain Call carries trace 0 — the untraced hot path stays untraced.
	if _, err := c.Call("traced", []byte("y"), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := <-gotTrace; got != 0 {
		t.Fatalf("plain Call leaked trace %#x", got)
	}
	if s.Requests.Value() != 2 || c.Calls.Value() != 2 {
		t.Fatalf("counters: server=%d client=%d, want 2/2", s.Requests.Value(), c.Calls.Value())
	}
}
