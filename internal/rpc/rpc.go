// Package rpc is the length-framed binary RPC layer connecting Helios
// processes: the frontend to serving workers, workers to the coordinator,
// and the distributed graphdb baseline's partitions to each other. It is a
// minimal multiplexed request/response protocol over TCP — one connection
// carries any number of concurrent calls correlated by request ID.
//
// Clients come in two modes. Dial gives the classic single-connection
// client: once the connection drops, every future call fails. DialOpts
// with Options.Reconnect builds a self-healing client — it dials on
// demand, re-establishes dropped connections with jittered exponential
// backoff, and (with a RetryBudget) transparently retries calls that hit
// transport failures. That mode is what lets the §4.1 replay story hold
// end to end: a broker restart is a pause, not a permanent wedge, for
// every RemoteBroker-backed worker.
//
// For experiments that model datacenter topologies (Fig. 4(d) varies
// cluster size), both ends accept an injected per-call delay that stands in
// for network RTT beyond the loopback's.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/clock"
	"helios/internal/codec"
	"helios/internal/faultpoint"
	"helios/internal/metrics"
	"helios/internal/obs"
)

// ErrClosed reports use of a closed client or server.
var ErrClosed = errors.New("rpc: closed")

// ErrDeadlineExceeded reports that a call's deadline budget ran out — either
// locally (the caller gave up waiting) or remotely (the server refused or
// abandoned work on a request whose budget had already expired in transit).
// Deadline errors are never retried: the time is gone no matter whose clock
// noticed first.
var ErrDeadlineExceeded = errors.New("rpc: deadline exceeded")

// ErrTimeout reports an expired call deadline on a single attempt. It wraps
// ErrDeadlineExceeded so errors.Is(err, ErrDeadlineExceeded) classifies both.
var ErrTimeout = fmt.Errorf("rpc: call timeout: %w", ErrDeadlineExceeded)

// RemoteError wraps an error string returned by a handler.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

const (
	frameRequest  = 0
	frameResponse = 1
	frameError    = 2
	// frameExpired is a response meaning the server observed the request's
	// deadline budget already spent and did no work (or the handler itself
	// returned ErrDeadlineExceeded). It maps back to ErrDeadlineExceeded on
	// the client so the type survives the hop without string matching.
	frameExpired = 3

	maxFrame = 64 << 20 // sanity bound
)

// Process-wide transport health aggregates, summed across every client in
// the process and exposed by RegisterMetrics. Per-client counters live on
// the Client itself.
var (
	totalReconnects   metrics.Counter
	totalRetries      metrics.Counter
	totalDialFailures metrics.Counter
)

// TotalReconnects reports successful re-dials across all clients.
func TotalReconnects() int64 { return totalReconnects.Value() }

// TotalRetries reports call retries across all clients.
func TotalRetries() int64 { return totalRetries.Value() }

// TotalDialFailures reports failed dial attempts across all clients.
func TotalDialFailures() int64 { return totalDialFailures.Value() }

// RegisterMetrics exposes the process-wide transport counters on reg:
// rpc.reconnects, rpc.retries, rpc.dial_failures.
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("rpc.reconnects", totalReconnects.Value)
	reg.CounterFunc("rpc.retries", totalRetries.Value)
	reg.CounterFunc("rpc.dial_failures", totalDialFailures.Value)
}

// Handler processes one request payload and returns the response payload.
type Handler func(req []byte) ([]byte, error)

// TracedHandler additionally receives the trace ID carried in the request
// frame (0 when the caller is untraced). Handlers that time their stages
// tag the resulting spans with this ID so a frontend-minted trace survives
// the process hop.
type TracedHandler func(trace uint64, req []byte) ([]byte, error)

// Ctx carries the per-request frame metadata a handler may care about: the
// caller's trace ID (0 = untraced) and the absolute deadline derived from
// the frame's budget field (zero time = no deadline).
type Ctx struct {
	Trace    uint64
	Deadline time.Time
}

// Expired reports whether the request's deadline has passed at now. A zero
// deadline never expires.
func (c Ctx) Expired(now time.Time) bool {
	return !c.Deadline.IsZero() && !now.Before(c.Deadline)
}

// Remaining returns the budget left at now, or 0 if there is no deadline.
// An expired deadline returns a negative duration.
func (c Ctx) Remaining(now time.Time) time.Duration {
	if c.Deadline.IsZero() {
		return 0
	}
	return c.Deadline.Sub(now)
}

// CtxHandler is the full-fidelity handler form: it receives the trace ID
// and the propagated deadline. Handlers that fan out further RPCs pass
// ctx.Remaining as the downstream timeout so the budget shrinks hop by hop.
type CtxHandler func(ctx Ctx, req []byte) ([]byte, error)

// BufHandler is the zero-copy handler form: the response is encoded into
// resp, a pooled writer the server owns — it frames and recycles the
// buffer after the response write, so the handler must not retain resp
// (or anything aliasing its bytes) past return. req is likewise a pooled
// read buffer released when the handler returns; retain a copy, never the
// slice.
type BufHandler func(ctx Ctx, req []byte, resp *codec.Writer) error

// handlerEntry holds one registered handler in exactly one of its forms.
type handlerEntry struct {
	ctx CtxHandler
	buf BufHandler
}

// Server serves registered handlers over TCP.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]handlerEntry
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Delay is slept before handling each request, simulating network RTT
	// for topology experiments. Zero for production use.
	Delay time.Duration

	// Requests counts request frames dispatched; Errors counts handler
	// failures (including unknown methods and panics) and failed response
	// writes. Expired counts requests answered with a deadline-exceeded
	// frame instead of being worked on (dead-on-arrival budget, or a
	// handler that bailed out with ErrDeadlineExceeded).
	Requests metrics.Counter
	Errors   metrics.Counter
	Expired  metrics.Counter
}

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{handlers: make(map[string]handlerEntry), conns: make(map[net.Conn]struct{})}
}

// Handle registers a handler for method, replacing any previous one.
func (s *Server) Handle(method string, h Handler) {
	s.HandleCtx(method, func(_ Ctx, req []byte) ([]byte, error) { return h(req) })
}

// HandleTraced registers a trace-aware handler for method.
func (s *Server) HandleTraced(method string, h TracedHandler) {
	s.HandleCtx(method, func(ctx Ctx, req []byte) ([]byte, error) { return h(ctx.Trace, req) })
}

// HandleCtx registers a deadline- and trace-aware handler for method.
func (s *Server) HandleCtx(method string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = handlerEntry{ctx: h}
}

// HandleBuf registers a buffer handler for method: the hot-path form that
// encodes its response into a server-pooled writer, so a steady-state
// response costs no per-call buffer allocation. See BufHandler for the
// ownership rules.
func (s *Server) HandleBuf(method string, h BufHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = handlerEntry{buf: h}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting. It returns
// the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		// Requests are read into pooled buffers: a handler only sees its
		// payload until it returns (BufHandler doc), so the buffer recycles
		// as soon as the response is framed.
		typ, id, trace, budget, method, payload, fb, err := readFramePooled(conn)
		if err != nil {
			return
		}
		if typ != frameRequest {
			putFrameBuf(fb)
			continue // ignore stray frames
		}
		// The frame carries a relative budget, not an absolute instant, so
		// the two processes need no clock agreement; the deadline is pinned
		// to this host's clock at receipt.
		var deadline time.Time
		if budget > 0 {
			deadline = time.Now().Add(time.Duration(budget))
		}
		s.mu.RLock()
		entry := s.handlers[method]
		delay := s.Delay
		s.mu.RUnlock()
		s.Requests.Inc()
		// Handle concurrently: one slow call must not head-of-line block
		// the connection.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer putFrameBuf(fb)
			if delay > 0 {
				time.Sleep(delay)
			}
			ctx := Ctx{Trace: trace, Deadline: deadline}
			var resp []byte
			var bw *codec.Writer
			var herr error
			switch {
			case ctx.Expired(time.Now()):
				// Dead on arrival: the caller has already given up, so any
				// work done here would be thrown away. Fail fast instead of
				// occupying a worker.
				herr = ErrDeadlineExceeded
			case entry.ctx == nil && entry.buf == nil:
				herr = fmt.Errorf("unknown method %q", method)
			case entry.buf != nil:
				bw = codec.GetWriter()
				func() {
					defer func() {
						if r := recover(); r != nil {
							herr = fmt.Errorf("handler panic: %v", r)
						}
					}()
					herr = entry.buf(ctx, payload, bw)
				}()
				resp = bw.Bytes()
			default:
				func() {
					defer func() {
						if r := recover(); r != nil {
							herr = fmt.Errorf("handler panic: %v", r)
						}
					}()
					resp, herr = entry.ctx(ctx, payload)
				}()
			}
			if bw != nil {
				// Safe to recycle only after the response write below has
				// copied resp into its own frame buffer (deferred = after
				// the writeMu section).
				defer codec.PutWriter(bw)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				if errors.Is(herr, ErrDeadlineExceeded) {
					// Keep the error typed across the hop: an expired frame
					// maps back to ErrDeadlineExceeded client-side.
					s.Expired.Inc()
					if werr := writeFrame(conn, frameExpired, id, trace, 0, "", nil); werr != nil {
						s.Errors.Inc()
						conn.Close()
					}
					return
				}
				s.Errors.Inc()
				if werr := writeFrame(conn, frameError, id, trace, 0, "", []byte(herr.Error())); werr != nil {
					s.Errors.Inc()
					conn.Close()
				}
				return
			}
			if faultpoint.Dropped("rpc.server.write") {
				// Chaos hook: swallow the response, leaving the client to
				// its timeout (or retry budget).
				return
			}
			werr := faultpoint.Inject("rpc.server.write")
			if werr == nil {
				werr = writeFrame(conn, frameResponse, id, trace, 0, "", resp)
			}
			if werr != nil {
				// A failed response write would leave the peer waiting out
				// its full timeout; count it and close the connection so
				// the client's readLoop fails fast instead.
				s.Errors.Inc()
				conn.Close()
			}
		}()
	}
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection, and waits for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// frame layout:
//
//	uint32 length | byte type | uint64 id | uint64 trace | int64 budget | uint16 methodLen | method | payload
//
// trace is the request's trace ID (0 = untraced); responses echo the
// request's trace so either side can correlate without a lookup. budget is
// the caller's remaining deadline budget in nanoseconds (0 = no deadline),
// carried only on requests; the receiver pins it to its own clock, and any
// further hop is issued with the shrunken remainder.
// Frame buffers recycle through a pool on both sides of the hot path:
// writeFrame assembles every outgoing frame in one, and the server reads
// requests into one released after the handler returns. Buffers that grew
// past the cap are dropped rather than pinned.
const maxPooledFrame = 1 << 20

var frameBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getFrameBuf returns a pooled buffer resized to n bytes.
func getFrameBuf(n int) *[]byte {
	fb := frameBufs.Get().(*[]byte)
	b := *fb
	if cap(b) < n {
		b = make([]byte, n)
	}
	*fb = b[:n]
	return fb
}

// putFrameBuf recycles a buffer from getFrameBuf. nil is a no-op.
func putFrameBuf(fb *[]byte) {
	if fb == nil || cap(*fb) > maxPooledFrame {
		return
	}
	frameBufs.Put(fb)
}

//lint:hotpath
func writeFrame(w io.Writer, typ byte, id, trace uint64, budget int64, method string, payload []byte) error {
	if len(method) > 0xffff {
		return errMethodTooLong
	}
	if budget < 0 {
		budget = 0
	}
	total := 1 + 8 + 8 + 8 + 2 + len(method) + len(payload)
	if total > maxFrame {
		return frameTooBig(total)
	}
	fb := getFrameBuf(4 + total)
	buf := *fb
	binary.BigEndian.PutUint32(buf, uint32(total))
	buf[4] = typ
	binary.BigEndian.PutUint64(buf[5:], id)
	binary.BigEndian.PutUint64(buf[13:], trace)
	binary.BigEndian.PutUint64(buf[21:], uint64(budget))
	binary.BigEndian.PutUint16(buf[29:], uint16(len(method)))
	copy(buf[31:], method)
	copy(buf[31+len(method):], payload)
	_, err := w.Write(buf)
	putFrameBuf(fb)
	return err
}

// parseFrame splits a frame body (everything after the length prefix)
// into its fields. method and payload alias buf.
//
//lint:hotpath
func parseFrame(buf []byte) (typ byte, id, trace uint64, budget int64, method string, payload []byte, err error) {
	typ = buf[0]
	id = binary.BigEndian.Uint64(buf[1:])
	trace = binary.BigEndian.Uint64(buf[9:])
	budget = int64(binary.BigEndian.Uint64(buf[17:]))
	if budget < 0 {
		budget = 0
	}
	mlen := int(binary.BigEndian.Uint16(buf[25:]))
	if 27+mlen > len(buf) {
		err = errBadMethodLen
		return
	}
	method = string(buf[27 : 27+mlen])
	payload = buf[27+mlen:]
	return
}

// readFrame reads one frame into a fresh buffer. The client read loop uses
// it because response payloads escape to callers with no release point.
//
//lint:hotpath
func readFrame(r io.Reader) (typ byte, id, trace uint64, budget int64, method string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < 27 || total > maxFrame {
		err = badFrameLen(total)
		return
	}
	buf := make([]byte, total)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	return parseFrame(buf)
}

// readFramePooled reads one frame into a pooled buffer. method and
// payload alias the buffer, which stays live until the caller releases fb
// with putFrameBuf; fb is nil (nothing to release) on error.
//
//lint:hotpath
func readFramePooled(r io.Reader) (typ byte, id, trace uint64, budget int64, method string, payload []byte, fb *[]byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < 27 || total > maxFrame {
		err = badFrameLen(total)
		return
	}
	fb = getFrameBuf(int(total))
	if _, err = io.ReadFull(r, *fb); err != nil {
		putFrameBuf(fb)
		fb = nil
		return
	}
	typ, id, trace, budget, method, payload, err = parseFrame(*fb)
	if err != nil {
		putFrameBuf(fb)
		fb = nil
	}
	return
}

// Cold frame errors, hoisted/outlined so the hot frame functions do not
// allocate on the success path (//lint:hotpath discipline).
var (
	errMethodTooLong = errors.New("rpc: method name too long")
	errBadMethodLen  = errors.New("rpc: bad method length")
)

func frameTooBig(n int) error  { return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n) }
func badFrameLen(n uint32) error { return fmt.Errorf("rpc: bad frame length %d", n) }

// Options configures a client built by DialOpts. The zero value reproduces
// Dial's behaviour (single connection, no retries).
type Options struct {
	// Reconnect makes the client self-healing: it dials lazily, and when a
	// connection drops it re-dials on the next call with jittered
	// exponential backoff between consecutive failed attempts. DialOpts
	// with Reconnect never fails at construction — the target being down
	// at boot is just the first outage to heal.
	Reconnect bool

	// RetryBudget is how many times a single Call is re-issued after a
	// transport failure (broken connection, failed dial). Remote handler
	// errors, timeouts, and ErrClosed are never retried. Only enable
	// retries for idempotent methods; with at-least-once semantics a
	// retried call may execute twice on the server. Requires Reconnect.
	RetryBudget int

	// BackoffBase and BackoffMax bound the reconnect backoff: attempt n
	// (counting consecutive failures) waits a uniformly jittered duration
	// in [b/2, b] where b = min(BackoffBase<<(n-1), BackoffMax).
	// Defaults: 20ms base, 2s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed seeds the jitter source, making backoff sequences reproducible
	// in tests. Zero means seed 1.
	Seed int64

	// Clock paces dial attempts (time already elapsed since the previous
	// attempt is credited against the backoff wait). Defaults to the wall
	// clock; tests inject a fake.
	Clock clock.Clock

	// Sleep performs the backoff wait. Defaults to time.Sleep; tests
	// inject a recorder to assert the backoff sequence without waiting.
	Sleep func(time.Duration)

	// Delay is slept inside every Call, simulating network RTT.
	Delay time.Duration
}

func (o *Options) fillDefaults() {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 20 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = clock.Wall()
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// Client is a multiplexed RPC client. In the default (Dial) mode it owns
// one TCP connection for its lifetime; in reconnect mode (DialOpts with
// Options.Reconnect) the connection is re-established on demand and calls
// may be retried within Options.RetryBudget.
type Client struct {
	addr string
	opts Options

	writeMu sync.Mutex
	mu      sync.Mutex // guards pending
	pending map[uint64]pendingCall
	nextID  atomic.Uint64
	closed  atomic.Bool

	// connMu guards the connection lifecycle state below.
	connMu   sync.Mutex
	conn     net.Conn
	gen      uint64 // bumped per established connection
	connErr  error  // why the last connection died (non-reconnect mode)
	dialing  bool
	dialDone chan struct{}
	failures int // consecutive failed dial attempts
	lastDial time.Time
	everConn bool
	rng      *rand.Rand

	// Delay is slept inside every Call, simulating network RTT.
	Delay time.Duration

	// Calls counts calls issued; Errors counts calls that returned an
	// error (remote, transport, or timeout) after exhausting any retries.
	Calls  metrics.Counter
	Errors metrics.Counter

	// Reconnects counts successful re-dials after a connection loss;
	// Retries counts per-call retry attempts; DialFailures counts failed
	// dial attempts. The same events also feed the process-wide
	// rpc.reconnects / rpc.retries / rpc.dial_failures aggregates.
	Reconnects   metrics.Counter
	Retries      metrics.Counter
	DialFailures metrics.Counter
}

type pendingCall struct {
	ch  chan result
	gen uint64
}

type result struct {
	payload []byte
	err     error
}

// Dial connects to a server with the classic single-connection contract:
// the dial happens eagerly (and its error is returned), and once the
// connection drops every future call fails.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, Options{})
}

// DialOpts connects to a server with explicit Options. Without
// Options.Reconnect it behaves exactly like Dial. With Reconnect the
// client is returned immediately and connects lazily, so it never fails
// at construction.
func DialOpts(addr string, opts Options) (*Client, error) {
	opts.fillDefaults()
	c := &Client{
		addr:    addr,
		opts:    opts,
		pending: make(map[uint64]pendingCall),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		Delay:   opts.Delay,
	}
	if !opts.Reconnect {
		if _, _, err := c.getConn(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// getConn returns the live connection, dialing if necessary (reconnect
// mode) or surfacing why there is none (single-connection mode). Exactly
// one caller dials at a time; concurrent callers wait for its outcome.
func (c *Client) getConn() (net.Conn, uint64, error) {
	for {
		if c.closed.Load() {
			return nil, 0, ErrClosed
		}
		c.connMu.Lock()
		if c.conn != nil {
			conn, gen := c.conn, c.gen
			c.connMu.Unlock()
			return conn, gen, nil
		}
		if c.everConn && !c.opts.Reconnect {
			err := c.connErr
			c.connMu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return nil, 0, err
		}
		if c.dialing {
			done := c.dialDone
			c.connMu.Unlock()
			<-done
			continue
		}
		c.dialing = true
		c.dialDone = make(chan struct{})
		var wait time.Duration
		if c.failures > 0 {
			wait = c.backoffLocked(c.failures)
			if elapsed := c.opts.Clock.Now().Sub(c.lastDial); elapsed > 0 {
				wait -= elapsed
			}
		}
		c.connMu.Unlock()

		if wait > 0 {
			c.opts.Sleep(wait)
		}
		err := faultpoint.Inject("rpc.dial")
		var conn net.Conn
		if err == nil {
			conn, err = net.Dial("tcp", c.addr)
		}

		c.connMu.Lock()
		c.dialing = false
		close(c.dialDone)
		c.lastDial = c.opts.Clock.Now()
		if c.closed.Load() {
			c.connMu.Unlock()
			if conn != nil {
				conn.Close()
			}
			return nil, 0, ErrClosed
		}
		if err != nil {
			c.failures++
			c.connMu.Unlock()
			c.DialFailures.Inc()
			totalDialFailures.Inc()
			return nil, 0, err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if c.everConn {
			c.Reconnects.Inc()
			totalReconnects.Inc()
		}
		c.everConn = true
		c.failures = 0
		c.conn = conn
		c.gen++
		gen := c.gen
		c.connMu.Unlock()
		//lint:allow goroutinestop reason=readLoop exits when its connection closes: Close() and reconnection both tear down conn, which unblocks readFrame with an error
		go c.readLoop(conn, gen)
		return conn, gen, nil
	}
}

// backoffLocked returns the jittered wait before the next dial attempt
// after `failures` consecutive failed attempts. Callers hold connMu (the
// jitter source is not otherwise synchronized).
func (c *Client) backoffLocked(failures int) time.Duration {
	d := c.opts.BackoffBase
	for i := 1; i < failures; i++ {
		d <<= 1
		if d >= c.opts.BackoffMax || d <= 0 {
			d = c.opts.BackoffMax
			break
		}
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	// Uniform jitter in [d/2, d] decorrelates reconnect storms when many
	// workers lose the same broker at once.
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

func (c *Client) readLoop(conn net.Conn, gen uint64) {
	for {
		typ, id, _, _, _, payload, err := readFrame(conn)
		if err == nil {
			// Response-read boundary: lets chaos tests kill a connection
			// between the server's write and the client's decode, which is
			// the window the reconnect/retry path has to survive.
			err = faultpoint.Inject("rpc.client.read")
		}
		if err != nil {
			c.dropConn(conn, gen, err)
			return
		}
		var res result
		switch typ {
		case frameError:
			res = result{err: &RemoteError{Msg: string(payload)}}
		case frameExpired:
			res = result{err: ErrDeadlineExceeded}
		default:
			res = result{payload: payload}
		}
		c.mu.Lock()
		pc, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			pc.ch <- res
		}
	}
}

// dropConn retires a dead connection: closes it, detaches it from the
// client if it is still current, and fails every call in flight on it.
func (c *Client) dropConn(conn net.Conn, gen uint64, err error) {
	conn.Close()
	c.connMu.Lock()
	if c.gen == gen && c.conn == conn {
		c.conn = nil
		c.connErr = err
	}
	c.connMu.Unlock()
	c.failGen(gen, err)
}

// failGen fails every pending call registered on connection generations
// up to and including gen. Calls on newer connections are untouched.
func (c *Client) failGen(gen uint64, err error) {
	if c.closed.Load() {
		err = ErrClosed
	}
	// Detach matching entries under the lock, deliver after releasing it:
	// each result channel is buffered so the sends cannot block, but
	// holding a mutex across channel sends is the pattern the
	// lockacrossblock analyzer bans, and the detached form needs no
	// exemption.
	c.mu.Lock()
	var detached []chan result
	for id, pc := range c.pending {
		if pc.gen <= gen {
			delete(c.pending, id)
			detached = append(detached, pc.ch)
		}
	}
	c.mu.Unlock()
	for _, ch := range detached {
		ch <- result{err: err}
	}
}

// Call invokes method with payload req and waits up to timeout for the
// response (0 means wait forever).
func (c *Client) Call(method string, req []byte, timeout time.Duration) ([]byte, error) {
	return c.CallTraced(method, 0, req, timeout)
}

// CallTraced is Call with a trace ID carried in the frame header, so the
// remote handler (HandleTraced) can tag its spans with the caller's trace.
// In reconnect mode, transport failures are retried up to
// Options.RetryBudget times; timeout is a total budget across attempts —
// each retry gets only what remains, and a call whose budget ran out during
// backoff fails with ErrDeadlineExceeded instead of being re-issued.
func (c *Client) CallTraced(method string, trace uint64, req []byte, timeout time.Duration) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.Calls.Inc()
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		remaining := timeout
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				if lastErr == nil {
					lastErr = ErrDeadlineExceeded
				}
				break
			}
		}
		payload, err := c.callOnce(method, trace, req, remaining)
		if err == nil {
			return payload, nil
		}
		lastErr = err
		if !retryable(err) || attempt >= c.opts.RetryBudget || c.closed.Load() {
			break
		}
		c.Retries.Inc()
		totalRetries.Inc()
	}
	c.Errors.Inc()
	return nil, lastErr
}

// retryable reports whether err is a transport-level failure worth
// re-issuing the call for. Handler errors already executed remotely,
// expired deadlines are gone no matter what, and ErrClosed is final — none
// retry.
func retryable(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrClosed)
}

// callOnce runs a single request/response exchange on the current (or
// freshly dialed) connection. timeout doubles as the deadline budget
// carried in the request frame, so the server can fail fast once the
// caller has given up.
func (c *Client) callOnce(method string, trace uint64, req []byte, timeout time.Duration) ([]byte, error) {
	conn, gen, err := c.getConn()
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch := make(chan result, 1)
	c.mu.Lock()
	c.pending[id] = pendingCall{ch: ch, gen: gen}
	c.mu.Unlock()

	c.writeMu.Lock()
	err = faultpoint.Inject("rpc.client.write")
	if err == nil {
		err = writeFrame(conn, frameRequest, id, trace, int64(timeout), method, req)
	}
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Retire the connection so the next attempt re-dials instead of
		// re-hitting the same broken pipe.
		c.dropConn(conn, gen, err)
		return nil, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-timer:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ErrTimeout
	}
}

// Close tears the client down; in-flight calls fail with ErrClosed and a
// reconnecting client stops re-dialing.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.connMu.Lock()
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
	// Defensive sweep for calls registered in the close window; normal
	// teardown already fails them via the readLoop's dropConn.
	c.failGen(^uint64(0), ErrClosed)
	return nil
}
