// Package rpc is the length-framed binary RPC layer connecting Helios
// processes: the frontend to serving workers, workers to the coordinator,
// and the distributed graphdb baseline's partitions to each other. It is a
// minimal multiplexed request/response protocol over TCP — one connection
// carries any number of concurrent calls correlated by request ID.
//
// For experiments that model datacenter topologies (Fig. 4(d) varies
// cluster size), both ends accept an injected per-call delay that stands in
// for network RTT beyond the loopback's.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/metrics"
)

// ErrClosed reports use of a closed client or server.
var ErrClosed = errors.New("rpc: closed")

// ErrTimeout reports an expired call deadline.
var ErrTimeout = errors.New("rpc: call timeout")

// RemoteError wraps an error string returned by a handler.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

const (
	frameRequest  = 0
	frameResponse = 1
	frameError    = 2

	maxFrame = 64 << 20 // sanity bound
)

// Handler processes one request payload and returns the response payload.
type Handler func(req []byte) ([]byte, error)

// TracedHandler additionally receives the trace ID carried in the request
// frame (0 when the caller is untraced). Handlers that time their stages
// tag the resulting spans with this ID so a frontend-minted trace survives
// the process hop.
type TracedHandler func(trace uint64, req []byte) ([]byte, error)

// Server serves registered handlers over TCP.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]TracedHandler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Delay is slept before handling each request, simulating network RTT
	// for topology experiments. Zero for production use.
	Delay time.Duration

	// Requests counts request frames dispatched; Errors counts handler
	// failures (including unknown methods and panics).
	Requests metrics.Counter
	Errors   metrics.Counter
}

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{handlers: make(map[string]TracedHandler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a handler for method, replacing any previous one.
func (s *Server) Handle(method string, h Handler) {
	s.HandleTraced(method, func(_ uint64, req []byte) ([]byte, error) { return h(req) })
}

// HandleTraced registers a trace-aware handler for method.
func (s *Server) HandleTraced(method string, h TracedHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting. It returns
// the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		typ, id, trace, method, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if typ != frameRequest {
			continue // ignore stray frames
		}
		s.mu.RLock()
		h := s.handlers[method]
		delay := s.Delay
		s.mu.RUnlock()
		s.Requests.Inc()
		// Handle concurrently: one slow call must not head-of-line block
		// the connection.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if delay > 0 {
				time.Sleep(delay)
			}
			var resp []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("unknown method %q", method)
			} else {
				func() {
					defer func() {
						if r := recover(); r != nil {
							herr = fmt.Errorf("handler panic: %v", r)
						}
					}()
					resp, herr = h(trace, payload)
				}()
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				s.Errors.Inc()
				writeFrame(conn, frameError, id, trace, "", []byte(herr.Error()))
				return
			}
			writeFrame(conn, frameResponse, id, trace, "", resp)
		}()
	}
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection, and waits for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// frame layout:
//
//	uint32 length | byte type | uint64 id | uint64 trace | uint16 methodLen | method | payload
//
// trace is the request's trace ID (0 = untraced); responses echo the
// request's trace so either side can correlate without a lookup.
func writeFrame(w io.Writer, typ byte, id, trace uint64, method string, payload []byte) error {
	if len(method) > 0xffff {
		return errors.New("rpc: method name too long")
	}
	total := 1 + 8 + 8 + 2 + len(method) + len(payload)
	if total > maxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", total)
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf, uint32(total))
	buf[4] = typ
	binary.BigEndian.PutUint64(buf[5:], id)
	binary.BigEndian.PutUint64(buf[13:], trace)
	binary.BigEndian.PutUint16(buf[21:], uint16(len(method)))
	copy(buf[23:], method)
	copy(buf[23+len(method):], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (typ byte, id, trace uint64, method string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < 19 || total > maxFrame {
		err = fmt.Errorf("rpc: bad frame length %d", total)
		return
	}
	buf := make([]byte, total)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	typ = buf[0]
	id = binary.BigEndian.Uint64(buf[1:])
	trace = binary.BigEndian.Uint64(buf[9:])
	mlen := int(binary.BigEndian.Uint16(buf[17:]))
	if 19+mlen > int(total) {
		err = errors.New("rpc: bad method length")
		return
	}
	method = string(buf[19 : 19+mlen])
	payload = buf[19+mlen:]
	return
}

// Client is a multiplexed RPC client over one TCP connection.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex
	mu      sync.Mutex
	pending map[uint64]chan result
	nextID  atomic.Uint64
	closed  atomic.Bool

	// Delay is slept inside every Call, simulating network RTT.
	Delay time.Duration

	// Calls counts calls issued; Errors counts calls that returned an
	// error (remote, transport, or timeout).
	Calls  metrics.Counter
	Errors metrics.Counter
}

type result struct {
	payload []byte
	err     error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan result)}
	//lint:allow goroutinestop readLoop exits when the connection closes: Close() tears down conn, which unblocks readFrame with an error
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		typ, id, _, _, payload, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		var res result
		switch typ {
		case frameError:
			res = result{err: &RemoteError{Msg: string(payload)}}
		default:
			res = result{payload: payload}
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- res
		}
	}
}

func (c *Client) failAll(err error) {
	if c.closed.Load() {
		err = ErrClosed
	}
	// Detach the pending set under the lock, deliver after releasing it:
	// each result channel is buffered so the sends cannot block, but
	// holding a mutex across channel sends is the pattern the
	// lockacrossblock analyzer bans, and the detached form needs no
	// exemption. Calls registering after the swap fail on their own write
	// to the broken connection.
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// Call invokes method with payload req and waits up to timeout for the
// response (0 means wait forever).
func (c *Client) Call(method string, req []byte, timeout time.Duration) ([]byte, error) {
	return c.CallTraced(method, 0, req, timeout)
}

// CallTraced is Call with a trace ID carried in the frame header, so the
// remote handler (HandleTraced) can tag its spans with the caller's trace.
func (c *Client) CallTraced(method string, trace uint64, req []byte, timeout time.Duration) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.Calls.Inc()
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	id := c.nextID.Add(1)
	ch := make(chan result, 1)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, frameRequest, id, trace, method, req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.Errors.Inc()
		return nil, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			c.Errors.Inc()
		}
		return res.payload, res.err
	case <-timer:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.Errors.Inc()
		return nil, ErrTimeout
	}
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.conn.Close()
}
