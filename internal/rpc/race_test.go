//go:build race

package rpc

// raceEnabled reports whether the race detector is on; the alloc pins
// skip under -race because detector instrumentation allocates.
const raceEnabled = true
