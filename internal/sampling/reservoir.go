// Package sampling implements the event-driven reservoir sampling of Helios
// §5.2. A reservoir holds the current one-hop sample set of one (query,
// vertex) pair; every relevant edge update is *offered* to the reservoir,
// which decides in O(fan-out) whether the new neighbour is admitted and
// which previous sample it evicts. The resulting sample distribution is
// identical to executing the ad-hoc sampling strategy over the full
// neighbour list (Vitter's Algorithm R for Random, exact top-K by timestamp
// for TopK, Efraimidis–Spirakis A-Res for EdgeWeight) — the property tests
// verify this equivalence.
package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"helios/internal/graph"
)

// Strategy selects the sampling algorithm of a one-hop query.
type Strategy uint8

const (
	// Random samples neighbours uniformly (Algorithm R).
	Random Strategy = iota
	// TopK keeps the K neighbours with the largest edge timestamps.
	TopK
	// EdgeWeight samples neighbours with probability proportional to edge
	// weight, without replacement (A-Res keys).
	EdgeWeight
)

// ParseStrategy resolves the query-DSL strategy names of Fig. 1.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "Random", "random":
		return Random, nil
	case "TopK", "topk", "topK":
		return TopK, nil
	case "EdgeWeight", "edgeweight", "edgeWeight":
		return EdgeWeight, nil
	default:
		return 0, fmt.Errorf("sampling: unknown strategy %q", name)
	}
}

func (s Strategy) String() string {
	switch s {
	case Random:
		return "Random"
	case TopK:
		return "TopK"
	case EdgeWeight:
		return "EdgeWeight"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Sample is one sampled neighbour: the target vertex of the admitted edge
// plus the edge attributes the strategies order by.
type Sample struct {
	Neighbor graph.VertexID
	Ts       graph.Timestamp
	Weight   float32
	// key is the A-Res priority for EdgeWeight reservoirs.
	key float64
}

// Admission reports the outcome of offering one edge to a reservoir.
type Admission struct {
	// Added is true when the offered neighbour entered the reservoir.
	Added bool
	// Evicted holds the displaced sample when Added is true and the
	// reservoir was full; HasEvicted distinguishes a replacement from a
	// plain append.
	Evicted    Sample
	HasEvicted bool
}

// Reservoir is the value cell of a reservoir table (§4.2): up to Cap
// sampled neighbours for one key vertex, maintained incrementally. A
// Reservoir is not safe for concurrent use; the sampling worker shards
// reservoirs over its sampling actors (one owner per vertex).
type Reservoir struct {
	strategy Strategy
	cap      int
	seen     uint64 // total edges offered (drives Algorithm R)
	items    []Sample
}

// NewReservoir returns an empty reservoir with the given strategy and
// capacity (the query fan-out). Capacity must be ≥ 1.
func NewReservoir(s Strategy, capacity int) *Reservoir {
	if capacity < 1 {
		panic("sampling: reservoir capacity must be ≥ 1")
	}
	return &Reservoir{strategy: s, cap: capacity, items: make([]Sample, 0, capacity)}
}

// Strategy returns the reservoir's sampling strategy.
func (r *Reservoir) Strategy() Strategy { return r.strategy }

// Cap returns the reservoir capacity (query fan-out).
func (r *Reservoir) Cap() int { return r.cap }

// Len returns the current number of samples.
func (r *Reservoir) Len() int { return len(r.items) }

// Seen returns the number of edges offered so far.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Items returns the live sample slice. Callers must not mutate it and must
// not retain it across Offer calls; use Snapshot for a stable copy.
func (r *Reservoir) Items() []Sample { return r.items }

// Snapshot returns a copy of the current samples.
func (r *Reservoir) Snapshot() []Sample {
	out := make([]Sample, len(r.items))
	copy(out, r.items)
	return out
}

// Offer presents the edge (→ neighbour n with timestamp ts, weight w) to the
// reservoir and returns the admission outcome. rng drives the randomized
// strategies; pass the owning actor's private source.
func (r *Reservoir) Offer(n graph.VertexID, ts graph.Timestamp, w float32, rng *rand.Rand) Admission {
	r.seen++
	s := Sample{Neighbor: n, Ts: ts, Weight: w}
	switch r.strategy {
	case Random:
		return r.offerRandom(s, rng)
	case TopK:
		return r.offerTopK(s)
	case EdgeWeight:
		return r.offerWeighted(s, rng)
	default:
		panic(fmt.Sprintf("sampling: unknown strategy %d", r.strategy))
	}
}

// offerRandom implements Vitter's Algorithm R: the i-th offered edge is
// admitted with probability cap/i, displacing a uniformly random slot. This
// is exactly the "generate p in [1, x]; replace the p-th item if p ≤ C" rule
// of §5.2.
func (r *Reservoir) offerRandom(s Sample, rng *rand.Rand) Admission {
	if len(r.items) < r.cap {
		r.items = append(r.items, s)
		return Admission{Added: true}
	}
	p := rng.Int63n(int64(r.seen)) // p in [0, seen)
	if p >= int64(r.cap) {
		return Admission{}
	}
	old := r.items[p]
	r.items[p] = s
	return Admission{Added: true, Evicted: old, HasEvicted: true}
}

// offerTopK keeps the cap samples with the largest timestamps, displacing
// the oldest when a newer edge arrives. Ties keep the incumbent so a stream
// of identical timestamps does not thrash the subscription cascade.
func (r *Reservoir) offerTopK(s Sample) Admission {
	if len(r.items) < r.cap {
		r.items = append(r.items, s)
		return Admission{Added: true}
	}
	oldest := 0
	for i := 1; i < len(r.items); i++ {
		if r.items[i].Ts < r.items[oldest].Ts {
			oldest = i
		}
	}
	if s.Ts <= r.items[oldest].Ts {
		return Admission{}
	}
	old := r.items[oldest]
	r.items[oldest] = s
	return Admission{Added: true, Evicted: old, HasEvicted: true}
}

// offerWeighted implements the Efraimidis–Spirakis A-Res scheme: each edge
// draws key = u^(1/w) (u uniform in (0,1)) and the reservoir keeps the cap
// largest keys, which yields weight-proportional sampling without
// replacement over the whole stream.
func (r *Reservoir) offerWeighted(s Sample, rng *rand.Rand) Admission {
	w := float64(s.Weight)
	if w <= 0 || math.IsNaN(w) {
		return Admission{} // zero-weight edges are never sampled
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	s.key = math.Pow(u, 1/w)
	if len(r.items) < r.cap {
		r.items = append(r.items, s)
		return Admission{Added: true}
	}
	minIdx := 0
	for i := 1; i < len(r.items); i++ {
		if r.items[i].key < r.items[minIdx].key {
			minIdx = i
		}
	}
	if s.key <= r.items[minIdx].key {
		return Admission{}
	}
	old := r.items[minIdx]
	r.items[minIdx] = s
	return Admission{Added: true, Evicted: old, HasEvicted: true}
}

// Reset empties the reservoir, retaining strategy and capacity.
func (r *Reservoir) Reset() {
	r.items = r.items[:0]
	r.seen = 0
}

// Restore replaces the reservoir contents from a checkpoint: the samples
// and the offered-edge count.
func (r *Reservoir) Restore(items []Sample, seen uint64) {
	r.items = append(r.items[:0], items...)
	if len(r.items) > r.cap {
		r.items = r.items[:r.cap]
	}
	r.seen = seen
}
