package sampling

import (
	"math"
	"math/rand"
	"sort"

	"helios/internal/graph"
)

// Ad-hoc sampling over a complete neighbour list. These are the reference
// semantics a graph database implements at query time (§3): the reservoir
// implementations must match their distributions, and the graphdb baseline
// executes them directly (paying the full neighbour scan the paper's
// Fig. 4(c) measures).

// AdhocEdge is one entry of a materialized adjacency list.
type AdhocEdge struct {
	Neighbor graph.VertexID
	Ts       graph.Timestamp
	Weight   float32
}

// AdhocSample draws k samples from neighbours under the strategy, visiting
// every neighbour (the data-dependent cost the paper attributes to long tail
// latency). The input slice is not modified.
func AdhocSample(strategy Strategy, neighbors []AdhocEdge, k int, rng *rand.Rand) []AdhocEdge {
	switch strategy {
	case Random:
		return adhocRandom(neighbors, k, rng)
	case TopK:
		return adhocTopK(neighbors, k)
	case EdgeWeight:
		return adhocWeighted(neighbors, k, rng)
	default:
		return nil
	}
}

func adhocRandom(neighbors []AdhocEdge, k int, rng *rand.Rand) []AdhocEdge {
	if len(neighbors) <= k {
		return append([]AdhocEdge(nil), neighbors...)
	}
	// Partial Fisher–Yates over an index permutation.
	idx := make([]int, len(neighbors))
	for i := range idx {
		idx[i] = i
	}
	out := make([]AdhocEdge, 0, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, neighbors[idx[i]])
	}
	return out
}

func adhocTopK(neighbors []AdhocEdge, k int) []AdhocEdge {
	out := append([]AdhocEdge(nil), neighbors...)
	// Full sort: this is what a timestamp-ordered TopK over an unsorted
	// adjacency list costs, and exactly why supernodes create tails.
	sort.Slice(out, func(i, j int) bool { return out[i].Ts > out[j].Ts })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func adhocWeighted(neighbors []AdhocEdge, k int, rng *rand.Rand) []AdhocEdge {
	type keyed struct {
		e   AdhocEdge
		key float64
	}
	ks := make([]keyed, 0, len(neighbors))
	for _, e := range neighbors {
		w := float64(e.Weight)
		if w <= 0 || math.IsNaN(w) {
			continue
		}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		ks = append(ks, keyed{e: e, key: math.Pow(u, 1/w)})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key > ks[j].key })
	if len(ks) > k {
		ks = ks[:k]
	}
	out := make([]AdhocEdge, len(ks))
	for i, x := range ks {
		out[i] = x.e
	}
	return out
}
