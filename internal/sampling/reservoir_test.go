package sampling

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"helios/internal/graph"
)

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"Random": Random, "random": Random,
		"TopK": TopK, "topk": TopK, "topK": TopK,
		"EdgeWeight": EdgeWeight, "edgeweight": EdgeWeight,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("Bogus"); err == nil {
		t.Fatal("bogus strategy should fail")
	}
	if Random.String() != "Random" || TopK.String() != "TopK" || EdgeWeight.String() != "EdgeWeight" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Fatal("unknown strategy should be explicit")
	}
}

func TestReservoirBasics(t *testing.T) {
	r := NewReservoir(Random, 3)
	rng := rand.New(rand.NewSource(1))
	if r.Cap() != 3 || r.Len() != 0 || r.Strategy() != Random {
		t.Fatal("fresh reservoir wrong")
	}
	for i := 0; i < 3; i++ {
		adm := r.Offer(graph.VertexID(i), graph.Timestamp(i), 1, rng)
		if !adm.Added || adm.HasEvicted {
			t.Fatalf("fill offer %d: %+v", i, adm)
		}
	}
	if r.Len() != 3 || r.Seen() != 3 {
		t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
	}
	snap := r.Snapshot()
	snap[0].Neighbor = 999
	if r.Items()[0].Neighbor == 999 {
		t.Fatal("snapshot must be a copy")
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNewReservoirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	NewReservoir(Random, 0)
}

func TestRandomReservoirUniform(t *testing.T) {
	// Offer N=100 distinct neighbours into a cap-10 reservoir, many trials;
	// every neighbour's inclusion frequency must approximate 10/100.
	const n, k, trials = 100, 10, 3000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(Random, k)
		for i := 0; i < n; i++ {
			r.Offer(graph.VertexID(i), 0, 1, rng)
		}
		if r.Len() != k {
			t.Fatalf("reservoir should be full: %d", r.Len())
		}
		for _, s := range r.Items() {
			counts[s.Neighbor]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("neighbour %d sampled %d times, want ≈ %.0f", i, c, want)
		}
	}
}

func TestRandomReservoirMatchesAdhocDistribution(t *testing.T) {
	// First and last stream positions must have equal inclusion probability
	// (the classic reservoir property ad-hoc sampling trivially has).
	const n, k, trials = 50, 5, 4000
	rng := rand.New(rand.NewSource(3))
	var firstRes, lastRes, firstAdhoc, lastAdhoc int
	neighbors := make([]AdhocEdge, n)
	for i := range neighbors {
		neighbors[i] = AdhocEdge{Neighbor: graph.VertexID(i), Weight: 1}
	}
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(Random, k)
		for i := 0; i < n; i++ {
			r.Offer(graph.VertexID(i), 0, 1, rng)
		}
		for _, s := range r.Items() {
			if s.Neighbor == 0 {
				firstRes++
			}
			if s.Neighbor == n-1 {
				lastRes++
			}
		}
		for _, s := range AdhocSample(Random, neighbors, k, rng) {
			if s.Neighbor == 0 {
				firstAdhoc++
			}
			if s.Neighbor == n-1 {
				lastAdhoc++
			}
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for name, c := range map[string]int{
		"res-first": firstRes, "res-last": lastRes,
		"adhoc-first": firstAdhoc, "adhoc-last": lastAdhoc,
	} {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("%s = %d, want ≈ %.0f", name, c, want)
		}
	}
}

func TestTopKExact(t *testing.T) {
	// TopK reservoir must hold exactly the K latest timestamps, in any
	// arrival order.
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(200)
	r := NewReservoir(TopK, 8)
	for _, ts := range perm {
		r.Offer(graph.VertexID(ts), graph.Timestamp(ts), 1, rng)
	}
	got := make([]int, 0, 8)
	for _, s := range r.Items() {
		got = append(got, int(s.Ts))
	}
	sort.Ints(got)
	for i, ts := range got {
		if want := 192 + i; ts != want {
			t.Fatalf("TopK item %d = ts %d, want %d (items %v)", i, ts, want, got)
		}
	}
}

func TestTopKMatchesAdhoc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var neighbors []AdhocEdge
	r := NewReservoir(TopK, 5)
	for i := 0; i < 300; i++ {
		ts := graph.Timestamp(rng.Int63n(1 << 40))
		neighbors = append(neighbors, AdhocEdge{Neighbor: graph.VertexID(i), Ts: ts})
		r.Offer(graph.VertexID(i), ts, 1, rng)
	}
	adhoc := AdhocSample(TopK, neighbors, 5, rng)
	resTs := make([]int64, 0, 5)
	for _, s := range r.Items() {
		resTs = append(resTs, int64(s.Ts))
	}
	adhocTs := make([]int64, 0, 5)
	for _, s := range adhoc {
		adhocTs = append(adhocTs, int64(s.Ts))
	}
	sort.Slice(resTs, func(i, j int) bool { return resTs[i] < resTs[j] })
	sort.Slice(adhocTs, func(i, j int) bool { return adhocTs[i] < adhocTs[j] })
	for i := range resTs {
		if resTs[i] != adhocTs[i] {
			t.Fatalf("TopK mismatch: reservoir %v vs adhoc %v", resTs, adhocTs)
		}
	}
}

func TestTopKTieKeepsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(TopK, 1)
	r.Offer(1, 100, 1, rng)
	adm := r.Offer(2, 100, 1, rng)
	if adm.Added {
		t.Fatal("equal timestamp should not displace incumbent")
	}
	if r.Items()[0].Neighbor != 1 {
		t.Fatal("incumbent lost on tie")
	}
}

func TestEdgeWeightBias(t *testing.T) {
	// Two neighbours, weight 9 vs 1, cap 1: the heavy one must be selected
	// ~90% of trials, matching the ad-hoc weighted sampler.
	const trials = 5000
	rng := rand.New(rand.NewSource(13))
	heavyRes, heavyAdhoc := 0, 0
	neighbors := []AdhocEdge{{Neighbor: 1, Weight: 9}, {Neighbor: 2, Weight: 1}}
	for i := 0; i < trials; i++ {
		r := NewReservoir(EdgeWeight, 1)
		r.Offer(1, 0, 9, rng)
		r.Offer(2, 0, 1, rng)
		if r.Items()[0].Neighbor == 1 {
			heavyRes++
		}
		if AdhocSample(EdgeWeight, neighbors, 1, rng)[0].Neighbor == 1 {
			heavyAdhoc++
		}
	}
	for name, c := range map[string]int{"reservoir": heavyRes, "adhoc": heavyAdhoc} {
		p := float64(c) / trials
		if p < 0.87 || p > 0.93 {
			t.Fatalf("%s heavy fraction = %.3f, want ≈ 0.90", name, p)
		}
	}
}

func TestEdgeWeightZeroWeightSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(EdgeWeight, 2)
	if adm := r.Offer(1, 0, 0, rng); adm.Added {
		t.Fatal("zero weight must never be sampled")
	}
	if adm := r.Offer(2, 0, -1, rng); adm.Added {
		t.Fatal("negative weight must never be sampled")
	}
	if adm := r.Offer(3, 0, float32(math.NaN()), rng); adm.Added {
		t.Fatal("NaN weight must never be sampled")
	}
	if r.Len() != 0 {
		t.Fatal("reservoir should stay empty")
	}
}

func TestAdmissionEvictionReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewReservoir(TopK, 2)
	r.Offer(1, 10, 1, rng)
	r.Offer(2, 20, 1, rng)
	adm := r.Offer(3, 30, 1, rng)
	if !adm.Added || !adm.HasEvicted || adm.Evicted.Neighbor != 1 {
		t.Fatalf("expected eviction of oldest (1): %+v", adm)
	}
	adm = r.Offer(4, 5, 1, rng)
	if adm.Added || adm.HasEvicted {
		t.Fatalf("stale edge should be rejected: %+v", adm)
	}
}

func TestReservoirInvariantsProperty(t *testing.T) {
	// Under any stream, the reservoir never exceeds capacity and every
	// admission with a full reservoir reports an eviction.
	f := func(seed int64, capRaw uint8, stream []uint32) bool {
		capacity := int(capRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		for _, strat := range []Strategy{Random, TopK, EdgeWeight} {
			r := NewReservoir(strat, capacity)
			for i, x := range stream {
				before := r.Len()
				adm := r.Offer(graph.VertexID(x), graph.Timestamp(x), float32(x%7)+1, rng)
				if r.Len() > capacity {
					return false
				}
				if adm.Added && before == capacity && !adm.HasEvicted {
					return false
				}
				if adm.Added && before < capacity && adm.HasEvicted {
					return false
				}
				if r.Seen() != uint64(i+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRestore(t *testing.T) {
	r := NewReservoir(Random, 2)
	r.Restore([]Sample{{Neighbor: 1}, {Neighbor: 2}, {Neighbor: 3}}, 10)
	if r.Len() != 2 || r.Seen() != 10 {
		t.Fatalf("restore should clamp to capacity: len=%d seen=%d", r.Len(), r.Seen())
	}
}

func TestAdhocSampleSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	neighbors := []AdhocEdge{{Neighbor: 1, Weight: 1}, {Neighbor: 2, Weight: 1}}
	for _, s := range []Strategy{Random, TopK, EdgeWeight} {
		out := AdhocSample(s, neighbors, 10, rng)
		if len(out) != 2 {
			t.Fatalf("%v: want all neighbours when k > n, got %d", s, len(out))
		}
	}
	if out := AdhocSample(Strategy(99), neighbors, 1, rng); out != nil {
		t.Fatal("unknown strategy should return nil")
	}
	if out := AdhocSample(Random, nil, 3, rng); len(out) != 0 {
		t.Fatal("empty adjacency should sample nothing")
	}
}

func TestAdhocRandomIsUniform(t *testing.T) {
	const n, k, trials = 20, 4, 4000
	rng := rand.New(rand.NewSource(17))
	neighbors := make([]AdhocEdge, n)
	for i := range neighbors {
		neighbors[i] = AdhocEdge{Neighbor: graph.VertexID(i), Weight: 1}
	}
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		out := AdhocSample(Random, neighbors, k, rng)
		if len(out) != k {
			t.Fatalf("got %d samples", len(out))
		}
		seen := map[graph.VertexID]bool{}
		for _, s := range out {
			if seen[s.Neighbor] {
				t.Fatal("duplicate in without-replacement sample")
			}
			seen[s.Neighbor] = true
			counts[s.Neighbor]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("neighbour %d: %d, want ≈ %.0f", i, c, want)
		}
	}
}

func BenchmarkReservoirOfferRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(Random, 25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Offer(graph.VertexID(i), graph.Timestamp(i), 1, rng)
	}
}

func BenchmarkReservoirOfferTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(TopK, 25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Offer(graph.VertexID(i), graph.Timestamp(i), 1, rng)
	}
}

func BenchmarkAdhocTopK1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	neighbors := make([]AdhocEdge, 1000)
	for i := range neighbors {
		neighbors[i] = AdhocEdge{Neighbor: graph.VertexID(i), Ts: graph.Timestamp(rng.Int63())}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AdhocSample(TopK, neighbors, 25, rng)
	}
}
