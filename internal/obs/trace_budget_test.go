package obs

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTracerSpanBudgetTruncation(t *testing.T) {
	tr := NewTracer(4, 2)
	tr.SetSpanBudget(4, 1<<20) // span-count limited
	spans := make([]Span, 10)
	var total int64
	for i := range spans {
		spans[i] = Span{Name: fmt.Sprintf("stage.%d", i), Dur: int64(i + 1)}
		total += int64(i + 1)
	}
	tr.Record(Trace{ID: 1, Op: "sample", Total: total, Spans: spans})
	got, ok := tr.Find(1)
	if !ok {
		t.Fatal("trace lost")
	}
	if len(got.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4 (budget incl. truncation marker)", len(got.Spans))
	}
	last := got.Spans[len(got.Spans)-1]
	if last.Name != "obs.truncated" {
		t.Fatalf("missing truncation marker: %+v", got.Spans)
	}
	if got.SpanSum() != total {
		t.Fatalf("SpanSum = %d, want %d (dropped time must fold into the marker)", got.SpanSum(), total)
	}

	// Byte-limited: long span names clip even under the span-count cap.
	tr2 := NewTracer(4, 2)
	tr2.SetSpanBudget(64, 200)
	long := strings.Repeat("x", 100)
	tr2.Record(Trace{ID: 2, Total: 30, Spans: []Span{
		{Name: long, Dur: 10}, {Name: long, Dur: 10}, {Name: long, Dur: 10},
	}})
	got2, _ := tr2.Find(2)
	if n := len(got2.Spans); n >= 3 {
		t.Fatalf("byte budget kept %d spans", n)
	}
	if got2.SpanSum() != 30 {
		t.Fatalf("SpanSum = %d after byte clip", got2.SpanSum())
	}
}

func TestTracerMemoryCeilingUnderSustainedLoad(t *testing.T) {
	const ringCap, worstN = 64, 8
	tr := NewTracer(ringCap, worstN)
	// An adversarial workload: every trace arrives with far more span
	// payload than the budget and strictly increasing Total so each also
	// enters the worst-N capture.
	bigName := strings.Repeat("s", 512)
	for i := 0; i < 5000; i++ {
		spans := make([]Span, 256)
		for j := range spans {
			spans[j] = Span{Name: bigName, Dur: 1}
		}
		tr.Record(Trace{ID: uint64(i + 1), Op: "sample", Total: int64(i), Spans: spans})
	}
	// Retained memory must stay under (ring+worstN) traces × the span
	// budget plus per-trace overhead — not the 5000×256-span firehose.
	limit := (ringCap + worstN) * (DefaultMaxSpanBytes + DefaultMaxSpans*64 + 1024)
	if got := tr.ApproxBytes(); got > limit {
		t.Fatalf("retained %d bytes, ceiling %d", got, limit)
	}
	// The capture still works: the worst trace is findable and truncated.
	got, ok := tr.Find(5000)
	if !ok {
		t.Fatal("worst trace lost")
	}
	if len(got.Spans) > DefaultMaxSpans {
		t.Fatalf("retained %d spans, budget %d", len(got.Spans), DefaultMaxSpans)
	}
}

func TestTracerAndOpsNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		tr := NewTracer(16, 4)
		tr.Record(Trace{ID: uint64(i + 1), Total: 1, Spans: []Span{{Name: "s", Dur: 1}}})
		srv, err := Serve("127.0.0.1:0", NewRegistry(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Give closed listeners' accept loops a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after tracer+ops churn", before, runtime.NumGoroutine())
}
