package obs

import (
	"strings"
	"testing"
	"time"

	"helios/internal/clock"
)

func TestRegisterBuildInfoGauges(t *testing.T) {
	clk := clock.NewFake()
	reg := NewRegistry()
	RegisterBuildInfo(reg, "helios-test", clk)

	snap := reg.Snapshot()
	name := Name("build.info", "component", "helios-test", "version", Version())
	if snap.Gauges[name] != 1 {
		t.Fatalf("gauge %q = %d, want 1 (gauges: %v)", name, snap.Gauges[name], snap.Gauges)
	}
	if got := snap.Gauges["process.start_time_seconds"]; got != clk.Now().Unix() {
		t.Fatalf("start_time_seconds = %d, want %d", got, clk.Now().Unix())
	}
	if got := snap.Gauges["process.uptime_seconds"]; got != 0 {
		t.Fatalf("uptime at registration = %d, want 0", got)
	}

	clk.Advance(90 * time.Second)
	snap = reg.Snapshot()
	if got := snap.Gauges["process.uptime_seconds"]; got != 90 {
		t.Fatalf("uptime after 90s = %d, want 90", got)
	}
	// Start time is fixed at registration, not re-read.
	if got := snap.Gauges["process.start_time_seconds"]; got != clk.Now().Add(-90*time.Second).Unix() {
		t.Fatalf("start_time_seconds drifted: %d", got)
	}

	// Nil registry is a no-op, nil clock defaults to wall.
	RegisterBuildInfo(nil, "x", nil)
	reg2 := NewRegistry()
	RegisterBuildInfo(reg2, "helios-wall", nil)
	if got := reg2.Snapshot().Gauges["process.uptime_seconds"]; got < 0 || got > 60 {
		t.Fatalf("wall-clock uptime = %d, want small non-negative", got)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" || strings.ContainsAny(v, " \t\n") {
		t.Fatalf("Version() = %q, want non-empty token", v)
	}
}
