package obs

import (
	"math"
	"sync"
	"testing"
	"time"

	"helios/internal/clock"
	"helios/internal/metrics"
)

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("fresh histogram count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%g) = %d, want 0", q, v)
		}
	}
	if _, ok := h.ExemplarNear(0.99); ok {
		t.Fatal("empty histogram produced an exemplar")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.P99Exemplar != "" || len(s.Exemplars) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram()
	h.Observe(1234, 0)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	// With one sample every quantile resolves to the same bucket bound.
	if s.P50 != s.P99 || s.P99 != s.P999 {
		t.Fatalf("single-sample quantiles diverge: p50=%d p99=%d p999=%d", s.P50, s.P99, s.P999)
	}
	if s.P50 < 1234 {
		t.Fatalf("quantile %d is not an upper bound on the sample 1234", s.P50)
	}
	if s.Max != 1234 {
		t.Fatalf("max = %d, want 1234", s.Max)
	}
	// Untraced observation leaves no exemplar behind.
	if _, ok := h.ExemplarNear(0.99); ok {
		t.Fatal("untraced observation produced an exemplar")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxInt64, 7)
	if h.Max() != math.MaxInt64 {
		t.Fatalf("max = %d", h.Max())
	}
	if v := h.Quantile(0.99); v != math.MaxInt64 {
		t.Fatalf("overflow-bucket quantile = %d, want MaxInt64 saturation", v)
	}
	ex, ok := h.ExemplarNear(0.99)
	if !ok {
		t.Fatal("overflow-bucket exemplar lost")
	}
	if ex.Trace != TraceHex(7) || ex.Value != math.MaxInt64 || ex.LE != math.MaxInt64 {
		t.Fatalf("overflow exemplar = %+v", ex)
	}
	// Negative samples clamp into the bottom bucket rather than panicking.
	h2 := NewHistogram()
	h2.Observe(-5, 9)
	if h2.Count() != 1 {
		t.Fatalf("negative sample dropped: count = %d", h2.Count())
	}
	if _, ok := h2.ExemplarNear(0.5); !ok {
		t.Fatal("negative sample left no exemplar")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Exercised with -race in `make race`: traced observations swap
	// exemplar cells while untraced ones hammer the base counters.
	h := NewHistogram().WithClock(clock.NewFake())
	h.AttachSLO(NewSLO("t", time.Millisecond, 0.99, time.Second))
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				trace := uint64(0)
				if i%2 == 0 {
					trace = uint64(g*per + i + 1)
				}
				h.Observe(int64(i%1000)*1000, trace)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if _, ok := h.ExemplarNear(0.5); !ok {
		t.Fatal("no exemplar survived the concurrent run")
	}
}

func TestExemplarReplacementDeterministic(t *testing.T) {
	clk := clock.NewFake()
	h := NewHistogram().WithClock(clk)
	// Two traced samples landing in the same bucket: latest wins, with the
	// fake clock pinning the retained timestamp exactly.
	v := int64(5000)
	if metrics.BucketIndex(v) != metrics.BucketIndex(v+1) {
		t.Fatalf("test samples %d and %d must share a bucket", v, v+1)
	}
	h.Observe(v, 11)
	first := clk.Now().UnixNano()
	clk.Advance(time.Second)
	h.Observe(v+1, 22)
	second := clk.Now().UnixNano()
	if first == second {
		t.Fatal("fake clock did not advance")
	}
	ex, ok := h.ExemplarNear(0.5)
	if !ok {
		t.Fatal("no exemplar")
	}
	if ex.Trace != TraceHex(22) || ex.Value != v+1 || ex.TS != second {
		t.Fatalf("latest-wins exemplar = %+v, want trace %s value %d ts %d",
			ex, TraceHex(22), v+1, second)
	}
	// A traced sample in a different bucket must not disturb this one.
	h.Observe(v*1000, 33)
	if ex2, _ := h.ExemplarNear(0.5); ex2.Trace != TraceHex(22) {
		t.Fatalf("distant bucket displaced exemplar: %+v", ex2)
	}
}

func TestExemplarNearSearchesOutward(t *testing.T) {
	h := NewHistogram()
	// Push the p99 into a high bucket with untraced mass, then record the
	// only traced sample far below: ExemplarNear must still find it.
	for i := 0; i < 1000; i++ {
		h.Observe(1_000_000, 0)
	}
	h.Observe(100, 5)
	ex, ok := h.ExemplarNear(0.99)
	if !ok || ex.Trace != TraceHex(5) {
		t.Fatalf("outward search failed: %+v %v", ex, ok)
	}
}
