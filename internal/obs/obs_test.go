package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestNameCanonicalizesLabels(t *testing.T) {
	a := Name("mq.consumer_lag", "topic", "samples", "partition", "2")
	b := Name("mq.consumer_lag", "partition", "2", "topic", "samples")
	if a != b {
		t.Fatalf("label order changed the name: %q vs %q", a, b)
	}
	if a != "mq.consumer_lag{partition=2,topic=samples}" {
		t.Fatalf("unexpected canonical name %q", a)
	}
	if got := Name("plain"); got != "plain" {
		t.Fatalf("no-label name mangled: %q", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("served", "worker", "0")
	c2 := r.Counter("served", "worker", "0")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("counter handles not shared")
	}
	if r.Counter("served", "worker", "1") == c1 {
		t.Fatal("different labels shared a counter")
	}

	g := r.Gauge("staleness")
	g.Set(42)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7 (last write wins)", g.Value())
	}

	h := r.Histogram("lat")
	h.Record(1000)
	if r.Histogram("lat").Count() != 1 {
		t.Fatal("histogram handles not shared")
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("lag").Set(5)
	r.Histogram("lat").Record(2000)
	r.GaugeFunc("cache_bytes", func() int64 { return 99 })
	r.CounterFunc("external", func() int64 { return 12 })

	s := r.Snapshot()
	if s.Counters["hits"] != 3 || s.Counters["external"] != 12 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["lag"] != 5 || s.Gauges["cache_bytes"] != 99 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("histograms = %v", s.Histograms)
	}

	var b strings.Builder
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"hits 3", "lag 5", "cache_bytes 99", "lat_count 1", "lat_p99 "} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["hits"] != 3 {
		t.Fatalf("JSON round trip lost counters: %v", round.Counters)
	}
}

func TestTracerIDsUniqueAndNonzero(t *testing.T) {
	tr := NewTracer(8, 4)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := tr.NewID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
}

func TestTracerRingAndWorstN(t *testing.T) {
	tr := NewTracer(4, 2)
	for i := 1; i <= 10; i++ {
		tr.Record(Trace{ID: uint64(i), Op: "sample", Total: int64(i * 100)})
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(recent))
	}
	if recent[0].ID != 7 || recent[3].ID != 10 {
		t.Fatalf("ring order wrong: first=%d last=%d", recent[0].ID, recent[3].ID)
	}
	worst := tr.Slowest()
	if len(worst) != 2 || worst[0].ID != 10 || worst[1].ID != 9 {
		t.Fatalf("worst-N wrong: %+v", worst)
	}
	// A fast trace must not displace the slow capture.
	tr.Record(Trace{ID: 11, Total: 1})
	if w := tr.Slowest(); w[0].ID != 10 || w[1].ID != 9 {
		t.Fatalf("fast trace displaced worst-N: %+v", w)
	}
	// But a new slowest goes to the front.
	tr.Record(Trace{ID: 12, Total: 5000})
	if w := tr.Slowest(); w[0].ID != 12 {
		t.Fatalf("slowest not captured: %+v", w)
	}
}

func TestTracerFind(t *testing.T) {
	tr := NewTracer(4, 2)
	tr.Record(Trace{ID: 1, Total: 10, Spans: []Span{{Name: "a", Dur: 4}, {Name: "b", Dur: 5}}})
	got, ok := tr.Find(1)
	if !ok || got.SpanSum() != 9 {
		t.Fatalf("Find(1) = %+v, %v", got, ok)
	}
	// Evict ID 1 from the ring; it survives only if among the worst.
	for i := 2; i <= 6; i++ {
		tr.Record(Trace{ID: uint64(i), Total: int64(i)})
	}
	if _, ok := tr.Find(1); !ok {
		t.Fatal("slow trace lost after ring eviction (worst-N should retain it)")
	}
	if _, ok := tr.Find(999); ok {
		t.Fatal("found a trace that was never recorded")
	}
}

func TestOpsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serving.sample_hits").Add(5)
	tracer := NewTracer(4, 2)
	tracer.Record(Trace{ID: 7, Op: "sample", Total: 1234, Spans: []Span{{Name: "serving.queue_wait", Dur: 200}}})

	srv, err := Serve("127.0.0.1:0", reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if text := get("/metrics"); !strings.Contains(text, "serving.sample_hits 5") {
		t.Fatalf("/metrics missing counter:\n%s", text)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serving.sample_hits"] != 5 {
		t.Fatalf("/metrics json = %v", snap.Counters)
	}

	var traces struct {
		Slowest []Trace `json:"slowest"`
		Recent  []Trace `json:"recent"`
	}
	if err := json.Unmarshal([]byte(get("/traces")), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Slowest) != 1 || traces.Slowest[0].ID != 7 || traces.Slowest[0].Spans[0].Name != "serving.queue_wait" {
		t.Fatalf("/traces = %+v", traces)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
