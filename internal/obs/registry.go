// Package obs is the Helios observability layer: a named metrics registry
// (counters, gauges, histograms with labels), request tracing with
// per-stage spans, and the ops HTTP endpoints every binary can expose
// (/metrics, /traces, net/http/pprof).
//
// The paper's claims are claims about *where time goes* — pre-sampling
// moves work to the ingestion path (§5), the query-aware cache bounds
// serving to a fixed number of local lookups (§6), and the
// sampling/serving split isolates ingestion bursts from request latency
// (§4). The registry and tracer make those decompositions measurable on a
// live deployment instead of only in the offline experiment harness:
// per-stage request spans attribute a slow request, MQ consumer-lag and
// sample-table staleness gauges quantify the §5 freshness story, and
// cache hit/miss counters validate the §6 locality story.
//
// Everything is stdlib-only and built on internal/metrics' lock-free
// primitives, so registered metrics are safe on the serving hot path.
// Components never read the wall clock through this package — durations
// and timestamps are stamped by the caller's injected internal/clock, so
// unit tests advance a fake clock instead of sleeping.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/metrics"
)

// Gauge is a settable instantaneous value (last-write-wins), e.g. the
// event-time staleness of the most recent cache apply. The zero value is
// ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Metric handles are created
// once (get-or-create by name) and then updated lock-free; the registry
// mutex guards only the name tables, never the hot update path.
//
// Names follow a dotted "component.metric" convention with optional
// labels: Name("mq.consumer_lag", "topic", t, "partition", "2") renders
// as `mq.consumer_lag{partition=2,topic=t}` (labels sorted, so the same
// metric always has one canonical name).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*metrics.Counter
	gauges   map[string]*Gauge
	hists    map[string]*metrics.Histogram
	// fns are read-at-scrape metrics computed from component state
	// (consumer lag, cache bytes, externally owned counters).
	counterFns map[string]func() int64
	gaugeFns   map[string]func() int64
	// stages are the exemplar-carrying per-stage latency histograms
	// (Registry.Stage); slos the registered burn-rate objectives.
	stages map[string]*Histogram
	slos   map[string]*SLO
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*metrics.Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*metrics.Histogram),
		counterFns: make(map[string]func() int64),
		gaugeFns:   make(map[string]func() int64),
		stages:     make(map[string]*Histogram),
		slos:       make(map[string]*SLO),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the cmd/ binaries expose on
// their ops listener. Libraries take an injected *Registry instead and
// only fall back to a private one, so unit tests never share state.
func Default() *Registry { return defaultRegistry }

// Name renders a metric name with labels in canonical (sorted) form.
// Labels are alternating key, value pairs; a trailing odd key is ignored.
// Keys and values are escaped (see EscapeLabel) so an adversarial topic
// or experiment name cannot smuggle a separator, quote or newline into
// the scrape output; the common all-clean case renders byte-identically
// to the unescaped form, keeping committed BENCH_*.json keys stable.
func Name(base string, labels ...string) string {
	if len(labels) < 2 {
		return base
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(EscapeLabel(p.k))
		b.WriteByte('=')
		b.WriteString(EscapeLabel(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// labelNeedsEscape reports whether c would corrupt the `base{k=v,...}`
// rendering or the line-oriented text exposition.
func labelNeedsEscape(c byte) bool {
	switch c {
	case '\\', '"', '\n', '\r', ',', '=', '{', '}', ' ':
		return true
	}
	return false
}

// EscapeLabel escapes a label key or value for the canonical metric-name
// rendering: backslash-escapes the structural bytes (`, = { }`), space
// (the name/value separator in text lines), quotes and backslashes, and
// rewrites newlines as \n / \r so one metric is always one line. Clean
// strings return unchanged (same backing array, no allocation).
func EscapeLabel(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if labelNeedsEscape(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	b := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		default:
			if labelNeedsEscape(c) {
				b = append(b, '\\', c)
			} else {
				b = append(b, c)
			}
		}
	}
	return string(b)
}

// UnescapeLabel inverts EscapeLabel.
func UnescapeLabel(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b = append(b, '\n')
			case 'r':
				b = append(b, '\r')
			default:
				b = append(b, s[i])
			}
			continue
		}
		b = append(b, c)
	}
	return string(b)
}

// ParseName splits a canonical metric name back into its base and label
// pairs, undoing EscapeLabel — the scrape-side inverse of Name. Names
// without labels return a nil map.
func ParseName(name string) (base string, labels map[string]string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:open]
	body := name[open+1 : len(name)-1]
	if body == "" {
		return base, nil
	}
	labels = make(map[string]string)
	var k []byte
	var cur []byte
	flushPair := func() {
		if k != nil {
			labels[UnescapeLabel(string(k))] = UnescapeLabel(string(cur))
		}
		k, cur = nil, nil
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && i+1 < len(body):
			cur = append(cur, c, body[i+1])
			i++
		case c == '=' && k == nil:
			k = cur
			if k == nil {
				k = []byte{}
			}
			cur = nil
		case c == ',':
			flushPair()
		default:
			cur = append(cur, c)
		}
	}
	flushPair()
	return base, labels
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(base string, labels ...string) *metrics.Counter {
	name := Name(base, labels...)
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &metrics.Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(base string, labels ...string) *Gauge {
	name := Name(base, labels...)
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(base string, labels ...string) *metrics.Histogram {
	name := Name(base, labels...)
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &metrics.Histogram{}
		r.hists[name] = h
	}
	return h
}

// StageMetric is the base name every per-stage latency histogram is
// registered under; the stage itself is the `stage` label.
const StageMetric = "stage.latency_ns"

// Stage returns the exemplar histogram for one pipeline stage, creating
// it on first use. All stage histograms share the base name
// "stage.latency_ns" with the stage as a label (plus any extra labels),
// so the whole request path reads as one labelled family:
//
//	stage.latency_ns{stage=serving.khop_assembly}_p99
//
// Stage names should come from the Stage* constants so the lint suite can
// vouch for bounded cardinality.
func (r *Registry) Stage(stage string, labels ...string) *Histogram {
	name := Name(StageMetric, append([]string{"stage", stage}, labels...)...)
	r.mu.RLock()
	h := r.stages[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.stages[name]; h == nil {
		h = &Histogram{}
		r.stages[name] = h
	}
	return h
}

// SLO returns the named burn-rate objective, creating and registering it
// on first use (an existing name wins over new parameters, mirroring the
// other get-or-create constructors). Registered SLOs are served on /slo
// and folded into every snapshot as slo.* gauges.
func (r *Registry) SLO(name string, target time.Duration, objective float64, window time.Duration) *SLO {
	r.mu.RLock()
	s := r.slos[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.slos[name]; s == nil {
		s = NewSLO(name, target, objective, window)
		r.slos[name] = s
	}
	return s
}

// ReplaceSLO installs s under its name, displacing any previously
// registered objective — the re-targeting path (Registry.SLO is
// get-or-create and ignores new parameters).
func (r *Registry) ReplaceSLO(s *SLO) {
	if s == nil {
		return
	}
	r.mu.Lock()
	r.slos[s.Name] = s
	r.mu.Unlock()
}

// SLOSnapshots returns the rolling state of every registered SLO — the
// /slo endpoint's document.
func (r *Registry) SLOSnapshots() map[string]SLOSnapshot {
	r.mu.RLock()
	slos := make([]*SLO, 0, len(r.slos))
	for _, s := range r.slos {
		slos = append(slos, s)
	}
	r.mu.RUnlock()
	out := make(map[string]SLOSnapshot, len(slos))
	for _, s := range slos {
		out[s.Name] = s.Snapshot()
	}
	return out
}

// CounterFunc registers a monotonic value computed at scrape time —
// the bridge for counters owned by components that predate the registry
// (broker Appended/Fetched, actor-pool Handled, rpc call counts).
func (r *Registry) CounterFunc(base string, fn func() int64, labels ...string) {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[name] = fn
}

// GaugeFunc registers an instantaneous value computed at scrape time
// (consumer lag, cache bytes, pool depths).
func (r *Registry) GaugeFunc(base string, fn func() int64, labels ...string) {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Snapshot is a point-in-time copy of every registered metric, in the
// shape served by /metrics?format=json and written by helios-bench's
// BENCH_*.json trajectory files.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]int64            `json:"gauges"`
	Histograms map[string]metrics.Snapshot `json:"histograms"`
	// Stages are the per-stage exemplar histograms (tail quantiles through
	// p999 plus trace exemplars), keyed by canonical metric name.
	Stages map[string]HistSnapshot `json:"stages,omitempty"`
	// SLOs are the registered burn-rate objectives, keyed by SLO name.
	SLOs map[string]SLOSnapshot `json:"slos,omitempty"`
}

// Snapshot captures all metrics. Scrape functions run outside the
// registry lock would be nicer, but they are cheap atomic loads by
// convention; keep them inside so a concurrent registration cannot race
// the map iteration.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)+len(r.counterFns)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]metrics.Snapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fn := range r.counterFns {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.stages) > 0 {
		s.Stages = make(map[string]HistSnapshot, len(r.stages))
		for name, h := range r.stages {
			s.Stages[name] = h.Snapshot()
		}
	}
	if len(r.slos) > 0 {
		s.SLOs = make(map[string]SLOSnapshot, len(r.slos))
		for name, slo := range r.slos {
			snap := slo.Snapshot()
			s.SLOs[name] = snap
			// Fold the burn state into the gauge section so plain /metrics
			// scrapers (and the text exposition) see it without a new shape.
			s.Gauges[Name("slo.burn_rate_milli", "slo", name)] = int64(snap.BurnRate * 1000)
			s.Gauges[Name("slo.bad_total", "slo", name)] = snap.Bad
			s.Gauges[Name("slo.good_total", "slo", name)] = snap.Good
		}
	}
	return s
}

// WriteText renders the snapshot as sorted `name value` lines — the
// plain-text /metrics format. Histograms expand into per-quantile lines.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+6*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_mean %.0f", name, h.Mean),
			fmt.Sprintf("%s_p50 %d", name, h.P50),
			fmt.Sprintf("%s_p90 %d", name, h.P90),
			fmt.Sprintf("%s_p99 %d", name, h.P99),
			fmt.Sprintf("%s_max %d", name, h.Max))
	}
	for name, h := range s.Stages {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_mean %.0f", name, h.Mean),
			fmt.Sprintf("%s_p50 %d", name, h.P50),
			fmt.Sprintf("%s_p90 %d", name, h.P90),
			fmt.Sprintf("%s_p99 %d", name, h.P99),
			fmt.Sprintf("%s_p999 %d", name, h.P999),
			fmt.Sprintf("%s_max %d", name, h.Max))
		// The text scrape keeps the p99→trace link: the exemplar line's
		// value is the hex trace ID to resolve on /traces.
		if h.P99Exemplar != "" {
			lines = append(lines, fmt.Sprintf("%s_p99_exemplar %s", name, h.P99Exemplar))
		}
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON is implemented on the value so /metrics?format=json and
// helios-bench share one encoding.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}
