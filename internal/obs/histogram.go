package obs

import (
	"sync/atomic"
	"time"

	"helios/internal/clock"
	"helios/internal/metrics"
)

// Histogram is an exponential-bucket latency histogram with *trace
// exemplars*: alongside the lock-free bucket counters (internal/metrics,
// ~4.6% relative error per bucket) each bucket remembers the most recent
// traced observation that landed in it — its trace ID, exact value and
// observation timestamp. That is the join key the tail-attribution story
// needs: /metrics says p99 moved, the p99 bucket's exemplar names a trace
// ID, and /traces resolves that ID to a per-stage span breakdown.
//
// Observe is safe for concurrent use. Untraced observations (trace 0) pay
// only the base histogram's atomic increments; the exemplar store and any
// attached SLO accounting run only when a trace ID or SLO is present, so
// untraced hot-path traffic never reads the clock here.
type Histogram struct {
	base metrics.Histogram
	// clk stamps exemplars and SLO windows. Stored via atomic.Value so
	// WithClock can race a concurrent Observe (registries are shared).
	clk       atomic.Value // clock.Clock
	slos      atomic.Pointer[[]*SLO] // copy-on-attach
	exemplars [metrics.NumBuckets]atomic.Pointer[exemplarRec]
}

// exemplarRec is the per-bucket exemplar cell. A whole-struct pointer swap
// keeps the three fields consistent without a lock.
type exemplarRec struct {
	trace uint64
	value int64
	ts    int64
}

// NewHistogram returns an exemplar histogram on the wall clock.
func NewHistogram() *Histogram { return &Histogram{} }

// WithClock sets the clock used to timestamp exemplars and rotate SLO
// windows, returning h for chaining. Tests inject a fake so exemplar
// replacement is deterministic.
func (h *Histogram) WithClock(clk clock.Clock) *Histogram {
	if clk != nil {
		h.clk.Store(clk)
	}
	return h
}

func (h *Histogram) now() int64 {
	if c, ok := h.clk.Load().(clock.Clock); ok {
		return c.Now().UnixNano()
	}
	return time.Now().UnixNano()
}

// AttachSLO routes every observation (traced or not) into s's rolling
// good/bad accounting, so one Observe on the hot path feeds both the
// histogram and the burn-rate math. An attached SLO with the same Name is
// replaced, so re-targeting an objective never double-counts.
func (h *Histogram) AttachSLO(s *SLO) {
	if s == nil {
		return
	}
	for {
		cur := h.slos.Load()
		var old []*SLO
		if cur != nil {
			old = *cur
		}
		next := make([]*SLO, 0, len(old)+1)
		for _, have := range old {
			if have == s {
				return
			}
			if have.Name != s.Name {
				next = append(next, have)
			}
		}
		next = append(next, s)
		if h.slos.CompareAndSwap(cur, &next) {
			return
		}
	}
}

// Observe records one sample (nanoseconds). A nonzero trace installs the
// sample as the exemplar of its bucket, replacing whatever traced sample
// landed there before (latest-wins).
func (h *Histogram) Observe(v int64, trace uint64) {
	h.base.Record(v)
	var slos []*SLO
	if p := h.slos.Load(); p != nil {
		slos = *p
	}
	if trace == 0 && len(slos) == 0 {
		return
	}
	now := h.now()
	for _, s := range slos {
		s.observe(v, now)
	}
	if trace != 0 {
		h.exemplars[metrics.BucketIndex(v)].Store(&exemplarRec{trace: trace, value: v, ts: now})
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.base.Count() }

// Quantile returns an upper bound on the q-quantile.
func (h *Histogram) Quantile(q float64) int64 { return h.base.Quantile(q) }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.base.Max() }

// Exemplar is one traced observation pinned to a histogram bucket, in the
// shape served by /metrics?format=json.
type Exemplar struct {
	// Trace is the hex trace ID — the key to look up on /traces.
	Trace string `json:"trace"`
	// Value is the exact observed sample in nanoseconds.
	Value int64 `json:"value_ns"`
	// TS is when the sample was observed (clock nanoseconds).
	TS int64 `json:"ts_ns"`
	// LE is the upper bound of the bucket the sample landed in.
	LE int64 `json:"le_ns"`
}

// ExemplarNear returns the exemplar of the bucket closest to the
// q-quantile (searching outward from the quantile's bucket), so callers
// can ask "which trace looked like the p99" even when the exact p99
// bucket holds no traced sample.
func (h *Histogram) ExemplarNear(q float64) (Exemplar, bool) {
	if h.base.Count() == 0 {
		return Exemplar{}, false
	}
	at := metrics.BucketIndex(h.base.Quantile(q))
	if rec := h.exemplars[at].Load(); rec != nil {
		return exemplarOut(rec, at), true
	}
	for d := 1; d < metrics.NumBuckets; d++ {
		for _, idx := range [2]int{at - d, at + d} {
			if idx < 0 || idx >= metrics.NumBuckets {
				continue
			}
			if rec := h.exemplars[idx].Load(); rec != nil {
				return exemplarOut(rec, idx), true
			}
		}
	}
	return Exemplar{}, false
}

func exemplarOut(rec *exemplarRec, idx int) Exemplar {
	return Exemplar{
		Trace: TraceHex(rec.trace),
		Value: rec.value,
		TS:    rec.ts,
		LE:    metrics.BucketBound(idx),
	}
}

// HistSnapshot is a point-in-time summary of an exemplar histogram:
// tail quantiles through p999 plus every bucket exemplar currently held.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
	// P99Exemplar is the hex trace ID of the exemplar nearest the p99
	// bucket — the one-hop link from a tail quantile to /traces.
	P99Exemplar string `json:"p99_exemplar,omitempty"`
	// Exemplars lists the held bucket exemplars in ascending bucket order.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot summarizes the histogram and its exemplars.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.base.Count(),
		Mean:  h.base.Mean(),
		P50:   h.base.Quantile(0.50),
		P90:   h.base.Quantile(0.90),
		P99:   h.base.Quantile(0.99),
		P999:  h.base.Quantile(0.999),
		Max:   h.base.Max(),
	}
	for idx := 0; idx < metrics.NumBuckets; idx++ {
		if rec := h.exemplars[idx].Load(); rec != nil {
			s.Exemplars = append(s.Exemplars, exemplarOut(rec, idx))
		}
	}
	if ex, ok := h.ExemplarNear(0.99); ok {
		s.P99Exemplar = ex.Trace
	}
	return s
}

// Reset zeroes the histogram and drops all exemplars. Not atomic with
// respect to concurrent Observe; for use between experiment phases.
func (h *Histogram) Reset() {
	h.base.Reset()
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
}
