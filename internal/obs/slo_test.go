package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"helios/internal/clock"
)

func TestSLOBurnRate(t *testing.T) {
	clk := clock.NewFake()
	s := NewSLO("serve", 100*time.Millisecond, 0.9, time.Minute).WithClock(clk)
	// 9 good + 1 bad at a 0.9 objective burns the budget exactly: burn 1.0.
	for i := 0; i < 9; i++ {
		s.Observe(10 * time.Millisecond)
	}
	s.Observe(time.Second)
	snap := s.Snapshot()
	if snap.Good != 9 || snap.Bad != 1 || snap.Total != 10 {
		t.Fatalf("counts = %+v", snap)
	}
	if snap.BurnRate < 0.999 || snap.BurnRate > 1.001 {
		t.Fatalf("burn rate = %g, want 1.0", snap.BurnRate)
	}
	if snap.Healthy {
		t.Fatal("burn 1.0 must not report healthy")
	}
	// A boundary sample (== Target) counts good.
	s.Observe(100 * time.Millisecond)
	if got := s.Snapshot(); got.Good != 10 {
		t.Fatalf("boundary sample counted bad: %+v", got)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := clock.NewFake()
	s := NewSLO("serve", 100*time.Millisecond, 0.99, time.Minute).WithClock(clk)
	s.Observe(time.Second) // bad
	if snap := s.Snapshot(); snap.Bad != 1 {
		t.Fatalf("bad not counted: %+v", snap)
	}
	// Advance past the trailing window: the old slot must age out.
	clk.Advance(2 * time.Minute)
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Fatalf("stale slots survived the window: %+v", snap)
	}
	// New observations land in fresh slots (epoch-tagged reuse).
	s.Observe(10 * time.Millisecond)
	if snap := s.Snapshot(); snap.Good != 1 || snap.Bad != 0 {
		t.Fatalf("post-expiry counts = %+v", snap)
	}
}

func TestRegistrySLOGaugesAndEndpoint(t *testing.T) {
	reg := NewRegistry()
	clk := clock.NewFake()
	s := reg.SLO("frontend.sample_latency", 100*time.Millisecond, 0.9, time.Minute)
	s.WithClock(clk)
	if reg.SLO("frontend.sample_latency", time.Hour, 0.5, time.Hour) != s {
		t.Fatal("SLO not get-or-create by name")
	}
	// Route observations through a stage histogram with the SLO attached:
	// one Observe feeds both surfaces.
	h := reg.Stage("frontend.request").WithClock(clk)
	h.AttachSLO(s)
	h.Observe((10 * time.Millisecond).Nanoseconds(), 0)
	h.Observe(time.Second.Nanoseconds(), 42)

	snap := reg.Snapshot()
	slo, ok := snap.SLOs["frontend.sample_latency"]
	if !ok || slo.Good != 1 || slo.Bad != 1 {
		t.Fatalf("snapshot SLO = %+v (ok=%v)", slo, ok)
	}
	// Burn state folds into plain gauges for text scrapers.
	name := Name("slo.burn_rate_milli", "slo", "frontend.sample_latency")
	if snap.Gauges[name] != 5000 { // bad fraction 0.5 / budget 0.1 = burn 5.0
		t.Fatalf("burn gauge = %d, want 5000 (gauges: %v)", snap.Gauges[name], snap.Gauges)
	}
	if snap.Gauges[Name("slo.bad_total", "slo", "frontend.sample_latency")] != 1 {
		t.Fatal("bad_total gauge missing")
	}

	// /slo serves the same document over HTTP.
	srv, err := Serve("127.0.0.1:0", reg, NewTracer(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		SLOs map[string]SLOSnapshot `json:"slos"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, body)
	}
	got := out.SLOs["frontend.sample_latency"]
	if got.Total != 2 || got.BurnRate < 4.999 || got.BurnRate > 5.001 {
		t.Fatalf("/slo = %+v", got)
	}
}
