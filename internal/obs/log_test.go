package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"helios/internal/clock"
)

func TestLoggerJSONLine(t *testing.T) {
	var buf bytes.Buffer
	clk := clock.NewFake()
	l := NewLogger(&buf, "frontend").WithClock(clk)
	l.Warn(0x9f02ab31c77d10e4, "frontend.sample", "slow sample",
		"total_ms", int64(412), "degraded", true, "peer", `10.0.0.1:80 "quoted"`+"\n")

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		// The embedded newline in the peer value must be escaped, leaving
		// exactly the one line terminator.
		t.Fatalf("not a single line: %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"level":     "warn",
		"component": "frontend",
		"stage":     "frontend.sample",
		"trace":     "9f02ab31c77d10e4",
		"msg":       "slow sample",
		"peer":      "10.0.0.1:80 \"quoted\"\n",
	}
	for k, v := range want {
		if rec[k] != v {
			t.Fatalf("field %q = %v, want %v", k, rec[k], v)
		}
	}
	if rec["total_ms"] != float64(412) || rec["degraded"] != true {
		t.Fatalf("kv fields = %v", rec)
	}
	ts, err := time.Parse(time.RFC3339Nano, rec["ts"].(string))
	if err != nil {
		t.Fatalf("ts field: %v", err)
	}
	if !ts.Equal(clk.Now()) {
		t.Fatalf("ts = %v, want fake clock %v", ts, clk.Now())
	}
}

func TestLoggerLevelFilterAndNilSafety(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "c")
	l.Debug(0, "s", "dropped at default info")
	if buf.Len() != 0 {
		t.Fatalf("debug emitted at info level: %s", buf.String())
	}
	if l.Enabled(LevelDebug) {
		t.Fatal("Enabled(debug) true at info level")
	}
	l.SetLevel(LevelError)
	l.Warn(0, "s", "dropped")
	l.Error(7, "s", "kept")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("error-level filter kept %d lines:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), `"trace":"7"`) {
		t.Fatalf("trace stamp missing: %s", buf.String())
	}

	// Every method must be a no-op on a nil logger.
	var nilLog *Logger
	nilLog.Debug(1, "s", "m")
	nilLog.Info(1, "s", "m")
	nilLog.Warn(1, "s", "m")
	nilLog.Error(1, "s", "m")
	nilLog.SetLevel(LevelDebug)
	if nilLog.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	nilLog.WithClock(clock.NewFake())
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError,
	} {
		got, ok := ParseLevel(name)
		if !ok || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseLevel("verbose"); ok {
		t.Fatal("unknown level accepted")
	}
}

func TestLoggerTailRing(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "test").KeepTail(3)
	if l.Tail() != nil {
		t.Fatal("tail non-nil before any line")
	}
	for i := 0; i < 5; i++ {
		l.Info(0, "stage", fmt.Sprintf("line-%d", i))
	}
	tail := l.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail holds %d lines, want 3: %v", len(tail), tail)
	}
	// Oldest first, only the most recent lines survive.
	for i, want := range []string{"line-2", "line-3", "line-4"} {
		if !strings.Contains(tail[i], want) {
			t.Fatalf("tail[%d] = %q, want %s", i, tail[i], want)
		}
	}
	// Tail returns a copy: mutating it must not corrupt the ring.
	tail[0] = "clobbered"
	if got := l.Tail(); strings.Contains(got[0], "clobbered") {
		t.Fatal("Tail aliases internal ring")
	}

	// Shrinking the cap trims in place; 0 turns retention off.
	l.KeepTail(2)
	if got := l.Tail(); len(got) != 2 || !strings.Contains(got[1], "line-4") {
		t.Fatalf("tail after shrink = %v", got)
	}
	l.KeepTail(0)
	if got := l.Tail(); got != nil {
		t.Fatalf("tail after disable = %v, want nil", got)
	}
	l.Info(0, "stage", "dropped")
	if got := l.Tail(); got != nil {
		t.Fatalf("disabled tail retained a line: %v", got)
	}

	// Nil logger: both are safe no-ops.
	var nilLogger *Logger
	if nilLogger.KeepTail(4) != nil || nilLogger.Tail() != nil {
		t.Fatal("nil logger tail methods not no-ops")
	}
}
