package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"helios/internal/clock"
)

func TestLoggerJSONLine(t *testing.T) {
	var buf bytes.Buffer
	clk := clock.NewFake()
	l := NewLogger(&buf, "frontend").WithClock(clk)
	l.Warn(0x9f02ab31c77d10e4, "frontend.sample", "slow sample",
		"total_ms", int64(412), "degraded", true, "peer", `10.0.0.1:80 "quoted"`+"\n")

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		// The embedded newline in the peer value must be escaped, leaving
		// exactly the one line terminator.
		t.Fatalf("not a single line: %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"level":     "warn",
		"component": "frontend",
		"stage":     "frontend.sample",
		"trace":     "9f02ab31c77d10e4",
		"msg":       "slow sample",
		"peer":      "10.0.0.1:80 \"quoted\"\n",
	}
	for k, v := range want {
		if rec[k] != v {
			t.Fatalf("field %q = %v, want %v", k, rec[k], v)
		}
	}
	if rec["total_ms"] != float64(412) || rec["degraded"] != true {
		t.Fatalf("kv fields = %v", rec)
	}
	ts, err := time.Parse(time.RFC3339Nano, rec["ts"].(string))
	if err != nil {
		t.Fatalf("ts field: %v", err)
	}
	if !ts.Equal(clk.Now()) {
		t.Fatalf("ts = %v, want fake clock %v", ts, clk.Now())
	}
}

func TestLoggerLevelFilterAndNilSafety(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "c")
	l.Debug(0, "s", "dropped at default info")
	if buf.Len() != 0 {
		t.Fatalf("debug emitted at info level: %s", buf.String())
	}
	if l.Enabled(LevelDebug) {
		t.Fatal("Enabled(debug) true at info level")
	}
	l.SetLevel(LevelError)
	l.Warn(0, "s", "dropped")
	l.Error(7, "s", "kept")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("error-level filter kept %d lines:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), `"trace":"7"`) {
		t.Fatalf("trace stamp missing: %s", buf.String())
	}

	// Every method must be a no-op on a nil logger.
	var nilLog *Logger
	nilLog.Debug(1, "s", "m")
	nilLog.Info(1, "s", "m")
	nilLog.Warn(1, "s", "m")
	nilLog.Error(1, "s", "m")
	nilLog.SetLevel(LevelDebug)
	if nilLog.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	nilLog.WithClock(clock.NewFake())
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError,
	} {
		got, ok := ParseLevel(name)
		if !ok || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseLevel("verbose"); ok {
		t.Fatal("unknown level accepted")
	}
}
