package obs

import (
	"runtime/debug"

	"helios/internal/clock"
)

// Build/process identity gauges. The cluster view age-stamps and
// version-stamps every worker from these, so a fleet running mixed
// builds (mid-rollout, or a straggler that missed a deploy) is visible
// from one /cluster scrape instead of N ssh sessions.

// Version returns the binary's build identity: the VCS revision when the
// binary was built from a checkout, the module version for a released
// build, else "dev".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}

// RegisterBuildInfo publishes the process identity gauges on reg:
//
//	build.info{component=...,version=...} 1
//	process.start_time_seconds            unix seconds at registration
//	process.uptime_seconds                seconds since registration
//
// component is the binary's own name ("helios-broker", ...). clk is the
// uptime source (nil defaults to the wall clock); tests inject a fake
// for deterministic uptime.
func RegisterBuildInfo(reg *Registry, component string, clk clock.Clock) {
	if reg == nil {
		return
	}
	if clk == nil {
		clk = clock.Wall()
	}
	start := clk.Now()
	//lint:allow metriclabel reason=component is the binary's compiled-in name and version its build stamp, fixed at startup, never request data
	reg.Gauge("build.info", "component", component, "version", Version()).Set(1)
	reg.Gauge("process.start_time_seconds").Set(start.Unix())
	reg.GaugeFunc("process.uptime_seconds", func() int64 {
		return int64(clk.Now().Sub(start).Seconds())
	})
}
