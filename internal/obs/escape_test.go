package obs

import (
	"strings"
	"testing"
)

// nastyLabels are the values satellite instrumentation could plausibly
// feed through a label: quotes, newlines, backslashes, the structural
// rendering bytes, and the text exposition's separators.
var nastyLabels = []string{
	`plain`,
	`has "quotes"`,
	"line\nbreak",
	"carriage\rreturn",
	`back\slash`,
	`comma,equals=braces{and}`,
	`trailing\`,
	` leading and trailing `,
	``,
	"mixed \\\"\n,={} everything",
}

func TestEscapeLabelRoundTrip(t *testing.T) {
	for _, s := range nastyLabels {
		esc := EscapeLabel(s)
		if strings.ContainsAny(esc, "\n\r") {
			t.Fatalf("EscapeLabel(%q) = %q still spans lines", s, esc)
		}
		if got := UnescapeLabel(esc); got != s {
			t.Fatalf("round trip lost data: %q -> %q -> %q", s, esc, got)
		}
	}
	// Clean strings must come back byte-identical (committed BENCH_*.json
	// keys depend on the unescaped rendering staying stable).
	clean := "serving.khop_assembly"
	if EscapeLabel(clean) != clean {
		t.Fatalf("clean label mangled: %q", EscapeLabel(clean))
	}
}

func TestParseNameRoundTrip(t *testing.T) {
	for _, val := range nastyLabels {
		name := Name("stage.latency_ns", "stage", val, "k2", `v"2`)
		if strings.ContainsAny(name, "\n\r") {
			t.Fatalf("Name with %q spans lines: %q", val, name)
		}
		base, labels := ParseName(name)
		if base != "stage.latency_ns" {
			t.Fatalf("base = %q from %q", base, name)
		}
		if labels["stage"] != val || labels["k2"] != `v"2` {
			t.Fatalf("labels = %v, want stage=%q", labels, val)
		}
	}
	if base, labels := ParseName("plain"); base != "plain" || labels != nil {
		t.Fatalf("unlabelled parse = %q %v", base, labels)
	}
}

func TestTextExpositionOneLinePerMetric(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mq.appended", "topic", "evil\ntopic \"x\"").Add(3)
	reg.Gauge("lag", "peer", `10.0.0.1\x`).Set(5)
	var b strings.Builder
	if err := reg.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		// Every line must be `name value`; escaped spaces (`\ `) may appear
		// inside the name, so the value is everything after the last space.
		cut := strings.LastIndex(line, " ")
		if cut < 0 || strings.ContainsAny(line[cut+1:], "{}=,") {
			t.Fatalf("exposition line not `name value`: %q\nfull:\n%s", line, text)
		}
		name := line[:cut]
		if !strings.Contains(name, "{") {
			continue
		}
		base, labels := ParseName(name)
		if base == "" || len(labels) == 0 {
			t.Fatalf("scrape-side parse failed for %q", name)
		}
		switch base {
		case "mq.appended":
			if labels["topic"] != "evil\ntopic \"x\"" {
				t.Fatalf("topic label corrupted: %q", labels["topic"])
			}
		case "lag":
			if labels["peer"] != `10.0.0.1\x` {
				t.Fatalf("peer label corrupted: %q", labels["peer"])
			}
		}
	}
}
