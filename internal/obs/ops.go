package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Ops HTTP surface: every Helios binary can expose an operational
// listener (the -ops-addr flag) serving
//
//	GET /metrics        registry snapshot, text (default) or ?format=json
//	GET /traces         slow-request capture + recent ring, JSON
//	GET /slo            rolling SLO burn rates, JSON
//	GET /healthz        liveness probe
//	/debug/pprof/...    the standard Go profiler endpoints
//
// The handlers only read registry/tracer state; they never touch worker
// internals, so an ops scrape cannot contend with the serving hot path
// beyond the atomic loads of a snapshot.

// Route mounts an extra endpoint on the ops mux — how a binary with
// host-specific surfaces (the coordinator's GET /cluster) extends the
// shared listener without the obs package knowing about them.
type Route struct {
	// Pattern is an http.ServeMux pattern (e.g. "GET /cluster").
	Pattern string
	Handler http.Handler
}

// Handler returns the ops mux over reg and tracer. Either may be nil, in
// which case the corresponding endpoint serves an empty document. extra
// routes are mounted after the standard ones.
func Handler(reg *Registry, tracer *Tracer, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			//lint:allow droppederror reason=HTTP response write: the client hanging up mid-body is not actionable
			_ = json.NewEncoder(w).Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lint:allow droppederror reason=HTTP response write: the client hanging up mid-body is not actionable
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("GET /traces", func(w http.ResponseWriter, r *http.Request) {
		out := struct {
			Slowest []Trace `json:"slowest"`
			Recent  []Trace `json:"recent"`
		}{Slowest: []Trace{}, Recent: []Trace{}}
		if tracer != nil {
			out.Slowest = tracer.Slowest()
			out.Recent = tracer.Recent()
			if n := r.URL.Query().Get("n"); n != "" {
				if lim, err := strconv.Atoi(n); err == nil && lim >= 0 {
					if len(out.Slowest) > lim {
						out.Slowest = out.Slowest[:lim]
					}
					if len(out.Recent) > lim {
						out.Recent = out.Recent[len(out.Recent)-lim:]
					}
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		//lint:allow droppederror reason=HTTP response write: the client hanging up mid-body is not actionable
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		out := struct {
			SLOs map[string]SLOSnapshot `json:"slos"`
		}{SLOs: map[string]SLOSnapshot{}}
		if reg != nil {
			out.SLOs = reg.SLOSnapshots()
		}
		w.Header().Set("Content-Type", "application/json")
		//lint:allow droppederror reason=HTTP response write: the client hanging up mid-body is not actionable
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		//lint:allow droppederror reason=HTTP response write: the client hanging up mid-body is not actionable
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		if rt.Handler != nil {
			mux.Handle(rt.Pattern, rt.Handler)
		}
	}
	return mux
}

// Server is a running ops listener.
type Server struct {
	http *http.Server
	ln   net.Listener
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves the ops endpoints in
// the background until Close.
func Serve(addr string, reg *Registry, tracer *Tracer, extra ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{http: &http.Server{Handler: Handler(reg, tracer, extra...)}, ln: ln}
	// http.Server.Serve returns when Close tears the listener down; the
	// goroutine cannot leak past Close.
	go func() {
		//lint:allow droppederror reason=Serve always returns ErrServerClosed after Close; nothing to act on
		_ = s.http.Serve(ln)
	}()
	return s, nil
}

// ServeDefault is the cmd/ binaries' -ops-addr hook: it binds the
// process-wide registry and tracer on addr. An empty addr returns a nil
// server (whose Close is a no-op), so a binary wires the flag in two
// lines without branching on whether ops were requested.
func ServeDefault(addr string, extra ...Route) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	return Serve(addr, Default(), DefaultTracer(), extra...)
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers. Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.http.Close()
}
