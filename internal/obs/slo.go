package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/clock"
)

// SLO tracks a rolling latency objective: "Objective of events complete
// within Target over the trailing Window". Every observation is counted
// good (≤ Target) or bad (> Target) into a ring of window slots; the burn
// rate is the observed bad fraction divided by the budgeted bad fraction
// (1 − Objective). Burn 1.0 means the error budget is being consumed
// exactly as provisioned; above 1.0 the objective will be violated if the
// rate holds — the standard multi-window burn alerting quantity.
//
// Observations are two atomic adds on the steady path; slot rotation
// (once per Window/sloSlots) takes a mutex.
type SLO struct {
	// Name identifies the objective (e.g. "frontend.sample_latency").
	Name string
	// Target is the latency threshold defining a good event.
	Target time.Duration
	// Objective is the required good fraction in (0, 1), e.g. 0.99.
	Objective float64
	// Window is the trailing accounting window.
	Window time.Duration

	clk   atomic.Value // clock.Clock; wall when unset
	mu    sync.Mutex   // serializes slot rotation
	slots [sloSlots]sloSlot
}

// sloSlots subdivides Window; a slot expires in whole units, so the
// effective window wobbles by Window/sloSlots (~6%).
const sloSlots = 16

type sloSlot struct {
	epoch atomic.Int64 // slot index since the unix epoch; 0 = never used
	good  atomic.Int64
	bad   atomic.Int64
}

// NewSLO returns an SLO on the wall clock. A non-positive or ≥1 objective
// defaults to 0.99; a non-positive window defaults to one minute.
func NewSLO(name string, target time.Duration, objective float64, window time.Duration) *SLO {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = time.Minute
	}
	if target <= 0 {
		target = 250 * time.Millisecond
	}
	return &SLO{Name: name, Target: target, Objective: objective, Window: window}
}

// WithClock sets the window-rotation clock, returning s for chaining.
func (s *SLO) WithClock(clk clock.Clock) *SLO {
	if clk != nil {
		s.clk.Store(clk)
	}
	return s
}

func (s *SLO) nowNS() int64 {
	if c, ok := s.clk.Load().(clock.Clock); ok {
		return c.Now().UnixNano()
	}
	return time.Now().UnixNano()
}

func (s *SLO) slotDur() int64 {
	d := s.Window.Nanoseconds() / sloSlots
	if d <= 0 {
		d = 1
	}
	return d
}

// Observe counts one event against the objective using the SLO's clock.
// Histograms with an attached SLO call the internal form instead, reusing
// the clock read they already paid for the exemplar.
func (s *SLO) Observe(lat time.Duration) { s.observe(lat.Nanoseconds(), s.nowNS()) }

func (s *SLO) observe(latNS, nowNS int64) {
	cur := nowNS / s.slotDur()
	slot := &s.slots[((cur%sloSlots)+sloSlots)%sloSlots]
	if slot.epoch.Load() != cur {
		s.mu.Lock()
		// A concurrent Observe with a clock reading one whole Window apart
		// could race this reset; within a window all writers agree on cur.
		if slot.epoch.Load() != cur {
			slot.good.Store(0)
			slot.bad.Store(0)
			slot.epoch.Store(cur)
		}
		s.mu.Unlock()
	}
	if latNS <= s.Target.Nanoseconds() {
		slot.good.Add(1)
	} else {
		slot.bad.Add(1)
	}
}

// SLOSnapshot is the rolling state of one SLO, in the shape served by
// /slo and embedded in registry snapshots.
type SLOSnapshot struct {
	Name        string  `json:"name"`
	TargetNS    int64   `json:"target_ns"`
	Objective   float64 `json:"objective"`
	WindowNS    int64   `json:"window_ns"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`
	Total       int64   `json:"total"`
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction / (1 − Objective); > 1 burns error budget
	// faster than provisioned.
	BurnRate float64 `json:"burn_rate"`
	Healthy  bool    `json:"healthy"`
}

// Snapshot sums the slots still inside the trailing window.
func (s *SLO) Snapshot() SLOSnapshot {
	cur := s.nowNS() / s.slotDur()
	out := SLOSnapshot{
		Name:      s.Name,
		TargetNS:  s.Target.Nanoseconds(),
		Objective: s.Objective,
		WindowNS:  s.Window.Nanoseconds(),
	}
	for i := range s.slots {
		slot := &s.slots[i]
		if e := slot.epoch.Load(); e == 0 || e <= cur-sloSlots || e > cur {
			continue
		}
		out.Good += slot.good.Load()
		out.Bad += slot.bad.Load()
	}
	out.Total = out.Good + out.Bad
	if out.Total > 0 {
		out.BadFraction = float64(out.Bad) / float64(out.Total)
	}
	if budget := 1 - s.Objective; budget > 0 {
		out.BurnRate = out.BadFraction / budget
	}
	out.Healthy = out.BurnRate < 1
	return out
}
