package obs

// Canonical pipeline stage names. Stage histograms, trace spans and log
// lines all spell stages the same way, so a p99 shift on
// stage.latency_ns{stage=X} greps straight to its spans and log lines.
//
// Query path (frontend → serving → back):
const (
	// StageFrontendRequest is the end-to-end sample latency as the
	// frontend sees it (admission through decoded response).
	StageFrontendRequest = "frontend.request"
	// StageFrontendAdmission is time spent acquiring the frontend's
	// overload limiter (queueing for admission).
	StageFrontendAdmission = "frontend.admission"
	// StageFrontendRPC is the residual transport time of the serving RPC:
	// round-trip minus the server-reported stage spans.
	StageFrontendRPC = "frontend.rpc_transport"
	// StageServingQueueWait is time a request waited in the serving
	// worker's actor queue before a shard picked it up.
	StageServingQueueWait = "serving.queue_wait"
	// StageServingKHop is K-hop subgraph assembly from the sample cache.
	StageServingKHop = "serving.khop_assembly"
	// StageServingFeature is feature-vector fetch for the assembled
	// vertices (cache + kvstore).
	StageServingFeature = "serving.feature_fetch"
	// StageServingEncode is wire-encoding the sample result for the reply.
	StageServingEncode = "serving.encode"
	// StageKVGet is a kvstore point read (feature store backend).
	StageKVGet = "kvstore.get"
	// StageGNNEmbed is GNN embedding computation on a sampled subgraph.
	StageGNNEmbed = "gnn.embed"
)

// Update path (ingest → mq → sampler → serving cache):
const (
	// StageFrontendIngest is appending one update batch to the MQ from the
	// frontend's ingest route.
	StageFrontendIngest = "frontend.ingest_append"
	// StageMQAppend is the broker-side append of one record batch.
	StageMQAppend = "mq.append"
	// StageMQFetch is the broker-side fetch of one record batch; it
	// includes time blocked waiting for the first record, bounded by the
	// consumer's poll wait.
	StageMQFetch = "mq.fetch"
	// StageSamplerRefresh is one reservoir/sample-table refresh step in
	// the sampling worker.
	StageSamplerRefresh = "sampler.refresh"
	// StageServingCacheApply is applying one sampler-published update to
	// the serving cache.
	StageServingCacheApply = "serving.cache_apply"
)
