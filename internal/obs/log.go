package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/clock"
)

// Logger is the minimal structured logger (stdlib only) the Helios
// binaries emit operational events through. Every line is one JSON object
// stamped with the component, the pipeline stage and the request's trace
// ID — the same trace ID the metrics exemplars and /traces carry, so
// logs, metrics and traces join on one key:
//
//	{"ts":"...","level":"warn","component":"frontend",
//	 "stage":"frontend.sample","trace":"9f02ab31c77d10e4",
//	 "msg":"slow sample","total_ms":412}
//
// Logging is not a hot-path facility: components log errors, shed/degrade
// decisions and slow requests, not per-request chatter. All methods are
// safe for concurrent use and are no-ops on a nil *Logger, so call sites
// never branch on whether logging is wired.
type Logger struct {
	mu        sync.Mutex // serializes line assembly + write
	w         io.Writer
	component string
	clk       clock.Clock
	min       atomic.Int32
	buf       []byte

	// tail retains the most recent emitted lines when KeepTail enabled
	// it — the slow-log excerpt telemetry snapshots and flight-recorder
	// captures carry.
	tail    []string
	tailCap int
}

// Level orders log severities.
type Level int32

// Levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level; unrecognized names report ok=false. It is the shared -log-level
// flag parser for the binaries.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}

// NewLogger returns a logger writing JSON lines to w (os.Stderr when nil)
// tagged with the given component name. The default minimum level is
// Info.
func NewLogger(w io.Writer, component string) *Logger {
	if w == nil {
		w = os.Stderr
	}
	l := &Logger{w: w, component: component}
	l.min.Store(int32(LevelInfo))
	return l
}

// WithClock sets the timestamp source, returning l for chaining. Tests
// inject a fake clock for deterministic "ts" fields.
func (l *Logger) WithClock(clk clock.Clock) *Logger {
	if l != nil && clk != nil {
		l.mu.Lock()
		l.clk = clk
		l.mu.Unlock()
	}
	return l
}

// KeepTail retains the most recent n emitted lines in memory (0 turns
// retention off), returning l for chaining. The tail is how a process's
// recent slow-log lines outlive it: telemetry reporters ship it with
// every snapshot, and flight-recorder captures persist it.
func (l *Logger) KeepTail(n int) *Logger {
	if l != nil {
		l.mu.Lock()
		l.tailCap = n
		if n <= 0 {
			l.tail = nil
		} else if len(l.tail) > n {
			l.tail = append([]string(nil), l.tail[len(l.tail)-n:]...)
		}
		l.mu.Unlock()
	}
	return l
}

// Tail returns a copy of the retained recent lines, oldest first. Nil
// when KeepTail was never enabled (or on a nil logger).
func (l *Logger) Tail() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.tail) == 0 {
		return nil
	}
	return append([]string(nil), l.tail...)
}

// SetLevel sets the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lines at lv would be emitted — the guard for
// call sites that would otherwise format arguments for a dropped line.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.min.Load()
}

// Debug emits a debug line. See Info for the field contract.
func (l *Logger) Debug(trace uint64, stage, msg string, kv ...any) {
	l.emit(LevelDebug, trace, stage, msg, kv)
}

// Info emits an info line. trace is the request's trace ID (0 for
// untraced work — still stamped, as "0", so every line parses the same
// way); stage names the pipeline stage the event belongs to; kv are
// alternating key, value pairs appended as extra JSON fields.
func (l *Logger) Info(trace uint64, stage, msg string, kv ...any) {
	l.emit(LevelInfo, trace, stage, msg, kv)
}

// Warn emits a warning line. See Info for the field contract.
func (l *Logger) Warn(trace uint64, stage, msg string, kv ...any) {
	l.emit(LevelWarn, trace, stage, msg, kv)
}

// Error emits an error line. See Info for the field contract.
func (l *Logger) Error(trace uint64, stage, msg string, kv ...any) {
	l.emit(LevelError, trace, stage, msg, kv)
}

func (l *Logger) emit(lv Level, trace uint64, stage, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if l.clk != nil {
		now = l.clk.Now()
	}
	b := l.buf[:0]
	b = append(b, `{"ts":`...)
	b = now.AppendFormat(append(b, '"'), time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, lv.String()...)
	b = append(b, `","component":`...)
	b = appendJSONString(b, l.component)
	b = append(b, `,"stage":`...)
	b = appendJSONString(b, stage)
	b = append(b, `,"trace":"`...)
	b = strconv.AppendUint(b, trace, 16)
	b = append(b, `","msg":`...)
	b = appendJSONString(b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		b = append(b, ',')
		b = appendJSONString(b, key)
		b = append(b, ':')
		b = appendJSONValue(b, kv[i+1])
	}
	b = append(b, '}', '\n')
	l.buf = b
	//lint:allow droppederror reason=log sink write failures are not actionable at the call site
	_, _ = l.w.Write(b)
	if l.tailCap > 0 {
		l.tail = append(l.tail, string(b[:len(b)-1]))
		if len(l.tail) > l.tailCap {
			copy(l.tail, l.tail[len(l.tail)-l.tailCap:])
			l.tail = l.tail[:l.tailCap]
		}
	}
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters. Non-ASCII bytes pass through
// verbatim (JSON strings are UTF-8).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int32:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case time.Duration:
		return appendJSONString(b, x.String())
	case string:
		return appendJSONString(b, x)
	case error:
		return appendJSONString(b, x.Error())
	default:
		return appendJSONString(b, fmt.Sprintf("%v", x))
	}
}

// TraceHex renders a trace ID the way log lines, exemplars and trace URLs
// do, so correlation greps share one spelling.
func TraceHex(trace uint64) string { return strconv.FormatUint(trace, 16) }
