package obs

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/graph"
)

// Request tracing. A trace ID is minted at the frontend when a request
// enters the system and travels with the request through the RPC envelope
// (internal/rpc frame header) and, on the update path, through MQ record
// payload headers (internal/wire, graph.Update.Trace). Each stage that
// handles the request appends a named span; the completed trace — queue
// wait, cache lookup / K-hop assembly, feature fetch, transport — is
// recorded into a bounded ring buffer plus a worst-N capture, so a slow
// request can be attributed to a stage after the fact via /traces.

// Span is one named stage of a request.
type Span struct {
	// Name identifies the stage (e.g. "serving.queue_wait").
	Name string `json:"name"`
	// Dur is the stage duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
}

// Trace is one completed request with its stage decomposition.
type Trace struct {
	// ID is the trace ID minted at the frontend (never 0 for a real trace).
	ID uint64 `json:"id"`
	// Op names the operation ("sample", "ingest", ...).
	Op string `json:"op"`
	// Start is the trace start in nanoseconds (caller's clock).
	Start int64 `json:"start_ns"`
	// Total is the end-to-end duration in nanoseconds. The spans sum to at
	// most Total; the remainder is time outside any instrumented stage.
	Total int64 `json:"total_ns"`
	// Spans are the recorded stages in execution order.
	Spans []Span `json:"spans"`
}

// SpanSum returns the summed span durations.
func (t Trace) SpanSum() int64 {
	var sum int64
	for _, s := range t.Spans {
		sum += s.Dur
	}
	return sum
}

// Tracer collects completed traces: the most recent ringCap traces plus
// the worstN slowest since start (the slow-request capture /traces
// serves). Recording is O(ringCap ins) + O(worstN) under one mutex — it
// runs once per *traced* request, and components only trace requests that
// arrived with a nonzero trace ID, so untraced hot-path traffic (local
// benchmarks) never pays it.
type Tracer struct {
	mu     sync.Mutex
	recent []Trace
	next   int // ring cursor into recent
	filled bool
	worst  []Trace // sorted by Total descending, ≤ worstN
	worstN int
	// Span-payload budget per retained trace (see SetSpanBudget): a trace
	// keeps at most maxSpans spans and maxSpanBytes of span-name bytes,
	// so retained memory is bounded by (ringCap+worstN)·maxSpanBytes no
	// matter what callers record under sustained load.
	maxSpans     int
	maxSpanBytes int

	nextID atomic.Uint64
	seed   uint64
}

// Default per-trace span budget. 64 spans comfortably covers the deepest
// instrumented path (K hops × a few stages each); 4KiB of span names is
// ~an order of magnitude above what real stages produce.
const (
	DefaultMaxSpans     = 64
	DefaultMaxSpanBytes = 4096
)

// spanOverhead approximates the fixed in-memory cost of one Span beyond
// its name bytes (string header + duration).
const spanOverhead = 24

// traceOverhead approximates the fixed in-memory cost of one retained
// Trace (struct fields + slice header + op string).
const traceOverhead = 96

// traceSeed distinguishes processes minting IDs concurrently. It reads
// the wall clock once at startup — acceptable here because obs is not a
// replay-deterministic package and IDs only need uniqueness, not
// reproducibility.
var traceSeed = func() uint64 {
	return graph.Hash64(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}()

// NewTracer returns a tracer retaining the last ringCap traces and the
// worstN slowest. Zero values default to 256 and 16.
func NewTracer(ringCap, worstN int) *Tracer {
	if ringCap <= 0 {
		ringCap = 256
	}
	if worstN <= 0 {
		worstN = 16
	}
	return &Tracer{
		recent:       make([]Trace, 0, ringCap),
		worstN:       worstN,
		maxSpans:     DefaultMaxSpans,
		maxSpanBytes: DefaultMaxSpanBytes,
		seed:         traceSeed,
	}
}

// SetSpanBudget overrides the per-trace retention caps (non-positive
// arguments keep the defaults). Recording is unaffected upstream — only
// what the tracer *retains* is clipped.
func (t *Tracer) SetSpanBudget(maxSpans, maxSpanBytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if maxSpans > 0 {
		t.maxSpans = maxSpans
	}
	if maxSpanBytes > 0 {
		t.maxSpanBytes = maxSpanBytes
	}
}

// truncatedSpan marks clipped traces; its duration folds in everything
// the budget dropped, so SpanSum is preserved.
const truncatedSpan = "obs.truncated"

// bound clips tr to the span budget, folding dropped spans into one
// synthetic truncation span so totals still reconcile.
func (t *Tracer) bound(tr Trace) Trace {
	maxSpans, maxBytes := t.maxSpans, t.maxSpanBytes
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxSpanBytes
	}
	keep := len(tr.Spans)
	bytes := 0
	for i, s := range tr.Spans {
		bytes += len(s.Name) + spanOverhead
		// Reserve one slot for the synthetic span when clipping.
		if i >= maxSpans-1 || bytes > maxBytes {
			keep = i
			break
		}
	}
	if keep >= len(tr.Spans) {
		return tr
	}
	var dropped int64
	for _, s := range tr.Spans[keep:] {
		dropped += s.Dur
	}
	spans := make([]Span, keep+1)
	copy(spans, tr.Spans[:keep])
	spans[keep] = Span{Name: truncatedSpan, Dur: dropped}
	tr.Spans = spans
	return tr
}

// ApproxBytes estimates the retained span-payload memory across the
// recent ring and worst-N capture — the quantity the memory-ceiling
// regression test pins.
func (t *Tracer) ApproxBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, set := range [2][]Trace{t.recent, t.worst} {
		for _, tr := range set {
			total += traceOverhead + len(tr.Op)
			for _, s := range tr.Spans {
				total += spanOverhead + len(s.Name)
			}
		}
	}
	return total
}

// NewID mints a process-unique, nonzero trace ID. IDs are a splitmix64
// hash of a per-process seed and an atomic sequence — unique without
// coordination and without the global math/rand source.
func (t *Tracer) NewID() uint64 {
	for {
		id := graph.Hash64(t.seed + t.nextID.Add(1))
		if id != 0 {
			return id
		}
	}
}

// Record stores one completed trace, clipped to the span budget.
func (t *Tracer) Record(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr = t.bound(tr)
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, tr)
	} else {
		t.recent[t.next] = tr
		t.next = (t.next + 1) % cap(t.recent)
		t.filled = true
	}
	// Insert into the worst-N capture (sorted descending by Total).
	if len(t.worst) < t.worstN || tr.Total > t.worst[len(t.worst)-1].Total {
		i := sort.Search(len(t.worst), func(i int) bool { return t.worst[i].Total < tr.Total })
		t.worst = append(t.worst, Trace{})
		copy(t.worst[i+1:], t.worst[i:])
		t.worst[i] = tr
		if len(t.worst) > t.worstN {
			t.worst = t.worst[:t.worstN]
		}
	}
}

// Recent returns the retained traces, oldest first.
func (t *Tracer) Recent() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.recent))
	if t.filled {
		out = append(out, t.recent[t.next:]...)
		out = append(out, t.recent[:t.next]...)
	} else {
		out = append(out, t.recent...)
	}
	return out
}

// Slowest returns the worst-N traces, slowest first.
func (t *Tracer) Slowest() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, len(t.worst))
	copy(out, t.worst)
	return out
}

// Find returns the most recently recorded trace with the given ID —
// how tests and ops probes retrieve a specific request's decomposition.
func (t *Tracer) Find(id uint64) (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Scan the ring newest-first so a reused ID resolves to the latest.
	n := len(t.recent)
	for i := 0; i < n; i++ {
		idx := i
		if t.filled {
			idx = ((t.next-1-i)%n + n) % n
		} else {
			idx = n - 1 - i
		}
		if t.recent[idx].ID == id {
			return t.recent[idx], true
		}
	}
	for _, tr := range t.worst {
		if tr.ID == id {
			return tr, true
		}
	}
	return Trace{}, false
}

var defaultTracer = NewTracer(0, 0)

// DefaultTracer returns the process-wide tracer the cmd/ binaries expose
// on their ops listener.
func DefaultTracer() *Tracer { return defaultTracer }
