// Package overload is Helios's admission-control layer: a concurrency
// limiter with a deadline-aware bounded wait queue, a windowed service-time
// estimate, and the typed errors that let every tier distinguish "shed by
// policy" from "deadline ran out".
//
// The paper's serving claim (§4) is that sampling/serving separation keeps
// ingestion bursts away from serving latency. This package is what enforces
// the serving half of that claim under load: instead of letting queues grow
// until every request is late, the frontend and serving workers admit at
// most a bounded amount of concurrent + queued work and shed the rest
// immediately. A shed request costs microseconds; an admitted-but-doomed
// request costs a worker for its full service time.
//
// Shedding decisions are deliberately cheap and local — a channel
// semaphore, an atomic waiter count, and an EWMA of observed service time.
// There is no global coordination: each stage protects itself, and the
// deadline budget carried in the RPC frame (see internal/rpc) is what links
// the stages into one end-to-end bound.
package overload

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"helios/internal/clock"
	"helios/internal/metrics"
	"helios/internal/obs"
	"helios/internal/rpc"
)

// ErrOverloaded is the sentinel wrapped by every shed error. Callers use
// errors.Is(err, ErrOverloaded) (or IsOverload, which also recognises sheds
// that crossed an RPC hop) to tell backpressure apart from real failures:
// an overloaded replica is healthy, just full, and must not be failed over
// or retried into.
var ErrOverloaded = errors.New("overload: shed")

// ShedError reports which stage shed the request and why.
type ShedError struct {
	Stage  string // e.g. "frontend", "serving", "ingest"
	Reason string // e.g. "queue_full", "budget", "wait_timeout"
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: shed at %s (%s)", e.Stage, e.Reason)
}

func (e *ShedError) Unwrap() error { return ErrOverloaded }

// Shed builds a typed shed error for stage with the given reason.
func Shed(stage, reason string) error { return &ShedError{Stage: stage, Reason: reason} }

// IsOverload reports whether err is a shed, including sheds that crossed an
// RPC boundary and arrived as a RemoteError (the frame carries only the
// error string, so the remote form is recognised by its stable prefix).
func IsOverload(err error) bool {
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "overload: shed")
}

// IsDeadline reports whether err means the request's deadline budget ran
// out (locally, remotely, or on a single-attempt timeout).
func IsDeadline(err error) bool { return errors.Is(err, rpc.ErrDeadlineExceeded) }

// Process-wide aggregates, summed across every limiter in the process so a
// single scrape (or a helios-bench BENCH snapshot) reports overload
// behaviour without enumerating stages.
var (
	totalShed     metrics.Counter
	totalDegraded metrics.Counter
	aggQueueWait  metrics.Histogram
)

// TotalShed reports requests shed across all limiters in the process.
func TotalShed() int64 { return totalShed.Value() }

// TotalDegraded reports degraded results served across the process.
func TotalDegraded() int64 { return totalDegraded.Value() }

// MarkDegraded counts one degraded result in the process aggregate; the
// serving layer calls it alongside its own per-worker counter.
func MarkDegraded() { totalDegraded.Inc() }

// CountShed folds one shed decided outside any limiter (e.g. ingestion
// backpressure) into the process aggregate.
func CountShed() { totalShed.Inc() }

// RegisterMetrics exposes the process-wide overload aggregates on reg:
// overload.shed (total sheds), overload.degraded (degraded results), and
// overload.queue_wait_p99_ns (p99 of admission queue wait).
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("overload.shed", totalShed.Value)
	reg.CounterFunc("overload.degraded", totalDegraded.Value)
	reg.GaugeFunc("overload.queue_wait_p99_ns", func() int64 { return aggQueueWait.Quantile(0.99) })
}

// Estimator is a lock-free EWMA of observed service time (α = 1/8). The
// zero value is ready to use and reports no estimate until the first
// observation.
type Estimator struct {
	ewma atomic.Int64 // nanoseconds; 0 = no samples yet
}

// Observe folds one observed service duration into the estimate.
func (e *Estimator) Observe(d time.Duration) {
	v := d.Nanoseconds()
	if v < 1 {
		v = 1
	}
	for {
		old := e.ewma.Load()
		nw := v
		if old > 0 {
			nw = old + (v-old)/8
			if nw < 1 {
				nw = 1
			}
		}
		if e.ewma.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Estimate returns the current service-time estimate, or 0 before any
// observation.
func (e *Estimator) Estimate() time.Duration {
	return time.Duration(e.ewma.Load())
}

// Config sizes a Limiter.
type Config struct {
	// Stage names the protected tier ("frontend", "serving", ...); it
	// labels the metrics and the shed errors.
	Stage string
	// MaxInflight bounds concurrently admitted requests. <=0 means 256.
	MaxInflight int
	// MaxQueue bounds requests waiting for admission. 0 means
	// 4×MaxInflight; negative means no queue — when every slot is busy the
	// request is shed immediately (used for best-effort side paths like
	// degraded serving).
	MaxQueue int
	// MaxWait caps the queue wait for callers without a deadline, so an
	// untimed request can never park forever. <=0 means 1s.
	MaxWait time.Duration
	// Headroom multiplies the service-time estimate when deciding whether
	// a caller's remaining budget is worth admitting: remaining <
	// Headroom×estimate sheds. <=0 means 2.
	Headroom int
	// Clock supplies timestamps (deadline math and queue-wait measurement).
	// Nil means the wall clock.
	Clock clock.Clock
	// Metrics receives the limiter's stage-labeled counters and gauges.
	// Nil means a private registry (metrics still count, but nothing
	// scrapes them).
	Metrics *obs.Registry
}

// Limiter is a concurrency limiter with a deadline-aware bounded wait
// queue. Admission order among waiters follows the runtime's channel FIFO.
type Limiter struct {
	stage    string
	clk      clock.Clock
	slots    chan struct{}
	maxQueue int64
	maxWait  time.Duration
	headroom time.Duration
	waiters  atomic.Int64

	// Est is the windowed service-time estimate fed by Release; exported
	// so a stage can seed or inspect it in tests.
	Est Estimator

	shedQueueFull *metrics.Counter
	shedBudget    *metrics.Counter
	shedWait      *metrics.Counter
	queueWait     *metrics.Histogram
	inflight      *obs.Gauge
	queued        *obs.Gauge
}

// NewLimiter builds a limiter from cfg.
func NewLimiter(cfg Config) *Limiter {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = time.Second
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	reg, stage := cfg.Metrics, cfg.Stage
	return &Limiter{
		stage:         stage,
		clk:           cfg.Clock,
		slots:         make(chan struct{}, cfg.MaxInflight),
		maxQueue:      int64(cfg.MaxQueue),
		maxWait:       cfg.MaxWait,
		headroom:      time.Duration(cfg.Headroom),
		shedQueueFull: reg.Counter("overload.shed", "stage", stage, "reason", "queue_full"),
		shedBudget:    reg.Counter("overload.shed", "stage", stage, "reason", "budget"),
		shedWait:      reg.Counter("overload.shed", "stage", stage, "reason", "wait_timeout"),
		queueWait:     reg.Histogram("overload.queue_wait", "stage", stage),
		inflight:      reg.Gauge("overload.inflight", "stage", stage),
		queued:        reg.Gauge("overload.queued", "stage", stage),
	}
}

// Acquire admits the caller or sheds it. deadline is the request's absolute
// deadline (zero = none). On success it returns a release function that
// must be called exactly once when the request finishes; release also feeds
// the service-time estimate. Failure modes:
//
//   - rpc.ErrDeadlineExceeded: the deadline passed before admission (on
//     entry or while queued).
//   - ShedError{reason: "budget"}: the remaining budget cannot cover
//     Headroom × the observed service time, so doing the work would only
//     produce a late answer.
//   - ShedError{reason: "queue_full"}: the wait queue is at its bound.
//   - ShedError{reason: "wait_timeout"}: an untimed request waited MaxWait
//     without admission.
func (l *Limiter) Acquire(deadline time.Time) (func(), error) {
	now := l.clk.Now()
	if !deadline.IsZero() {
		if !now.Before(deadline) {
			return nil, rpc.ErrDeadlineExceeded
		}
		if est := l.Est.Estimate(); est > 0 && deadline.Sub(now) < l.headroom*est {
			l.shedBudget.Inc()
			totalShed.Inc()
			return nil, Shed(l.stage, "budget")
		}
	}
	select {
	case l.slots <- struct{}{}:
		l.queueWait.Record(0)
		aggQueueWait.Record(0)
		return l.admitted(now), nil
	default:
	}
	if l.waiters.Add(1) > l.maxQueue {
		l.waiters.Add(-1)
		l.shedQueueFull.Inc()
		totalShed.Inc()
		return nil, Shed(l.stage, "queue_full")
	}
	l.queued.Add(1)
	defer func() {
		l.waiters.Add(-1)
		l.queued.Add(-1)
	}()
	wait := l.maxWait
	timed := false
	if !deadline.IsZero() {
		if r := deadline.Sub(now); r < wait {
			wait = r
			timed = true
		}
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		w := l.clk.Now().Sub(now).Nanoseconds()
		l.queueWait.Record(w)
		aggQueueWait.Record(w)
		return l.admitted(l.clk.Now()), nil
	case <-t.C:
		if timed {
			// The budget burned up in the queue: a deadline error, so the
			// caller (and any upstream hop) knows not to retry.
			return nil, rpc.ErrDeadlineExceeded
		}
		l.shedWait.Inc()
		totalShed.Inc()
		return nil, Shed(l.stage, "wait_timeout")
	}
}

// TryAcquire admits the caller only if a slot is immediately free; it never
// queues. Used for best-effort side paths (degraded serving).
func (l *Limiter) TryAcquire() (func(), bool) {
	select {
	case l.slots <- struct{}{}:
		return l.admitted(l.clk.Now()), true
	default:
		l.shedQueueFull.Inc()
		totalShed.Inc()
		return nil, false
	}
}

// admitted registers the admission and returns the one-shot release.
func (l *Limiter) admitted(start time.Time) func() {
	l.inflight.Add(1)
	var done atomic.Bool
	return func() {
		if done.Swap(true) {
			return
		}
		l.Est.Observe(l.clk.Now().Sub(start))
		l.inflight.Add(-1)
		<-l.slots
	}
}

// Inflight reports currently admitted requests.
func (l *Limiter) Inflight() int64 { return l.inflight.Value() }

// Queued reports requests currently waiting for admission.
func (l *Limiter) Queued() int64 { return l.waiters.Load() }
