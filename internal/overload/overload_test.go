package overload

import (
	"errors"
	"sync"
	"testing"
	"time"

	"helios/internal/obs"
	"helios/internal/rpc"
)

func TestShedErrorClassification(t *testing.T) {
	err := Shed("frontend", "queue_full")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("shed error does not wrap ErrOverloaded")
	}
	if !IsOverload(err) {
		t.Fatal("IsOverload rejects a local shed")
	}
	// A shed that crossed an RPC hop arrives as a RemoteError string.
	remote := &rpc.RemoteError{Msg: "rpc: remote: " + err.Error()}
	if !IsOverload(remote) {
		t.Fatal("IsOverload rejects a remote shed")
	}
	if IsOverload(errors.New("boom")) || IsOverload(nil) {
		t.Fatal("IsOverload accepts a non-shed")
	}
	if !IsDeadline(rpc.ErrTimeout) || !IsDeadline(rpc.ErrDeadlineExceeded) {
		t.Fatal("IsDeadline rejects rpc deadline errors")
	}
	if IsDeadline(err) {
		t.Fatal("a shed is not a deadline error")
	}
}

func TestLimiterConcurrencyBound(t *testing.T) {
	l := NewLimiter(Config{Stage: "t", MaxInflight: 2, MaxQueue: -1})
	r1, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	// No queue: the third caller sheds immediately.
	if _, err := l.Acquire(time.Time{}); !IsOverload(err) {
		t.Fatalf("err = %v, want overload", err)
	}
	r1()
	r1() // double release must be a no-op
	if got := l.Inflight(); got != 1 {
		t.Fatalf("inflight after release = %d, want 1", got)
	}
	r3, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("slot freed but acquire failed: %v", err)
	}
	r2()
	r3()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

func TestLimiterQueueBoundAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(Config{Stage: "t", MaxInflight: 1, MaxQueue: 1, Metrics: reg})
	release, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue; it is admitted once the slot frees.
	admitted := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := l.Acquire(time.Time{})
		admitted <- err
		if err == nil {
			r()
		}
	}()
	// Wait until the waiter is parked so the next caller overflows.
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Acquire(time.Time{}); !IsOverload(err) {
		t.Fatalf("overflow err = %v, want overload", err)
	}
	release()
	wg.Wait()
	if err := <-admitted; err != nil {
		t.Fatalf("queued caller failed: %v", err)
	}
	shed := reg.Counter("overload.shed", "stage", "t", "reason", "queue_full")
	if shed.Value() != 1 {
		t.Fatalf("queue_full sheds = %d, want 1", shed.Value())
	}
	if h := reg.Histogram("overload.queue_wait", "stage", "t"); h.Count() < 2 {
		t.Fatalf("queue_wait samples = %d, want >= 2", h.Count())
	}
}

func TestLimiterExpiredDeadline(t *testing.T) {
	l := NewLimiter(Config{Stage: "t", MaxInflight: 1})
	if _, err := l.Acquire(time.Now().Add(-time.Second)); !errors.Is(err, rpc.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := NewLimiter(Config{Stage: "t", MaxInflight: 1, MaxQueue: 4})
	release, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = l.Acquire(time.Now().Add(30 * time.Millisecond))
	if !errors.Is(err, rpc.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("queued caller waited %v past its 30ms deadline", waited)
	}
}

func TestLimiterUntimedWaitIsBounded(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(Config{Stage: "t", MaxInflight: 1, MaxQueue: 4, MaxWait: 20 * time.Millisecond, Metrics: reg})
	release, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := l.Acquire(time.Time{}); !IsOverload(err) {
		t.Fatalf("err = %v, want overload (wait_timeout)", err)
	}
	if c := reg.Counter("overload.shed", "stage", "t", "reason", "wait_timeout"); c.Value() != 1 {
		t.Fatalf("wait_timeout sheds = %d, want 1", c.Value())
	}
}

func TestLimiterBudgetShed(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(Config{Stage: "t", MaxInflight: 4, Headroom: 2, Metrics: reg})
	// Teach the estimator that requests take ~100ms.
	for i := 0; i < 32; i++ {
		l.Est.Observe(100 * time.Millisecond)
	}
	// 50ms of budget cannot cover 2×100ms: shed before doing work.
	if _, err := l.Acquire(time.Now().Add(50 * time.Millisecond)); !IsOverload(err) {
		t.Fatalf("err = %v, want overload (budget)", err)
	}
	if c := reg.Counter("overload.shed", "stage", "t", "reason", "budget"); c.Value() != 1 {
		t.Fatalf("budget sheds = %d, want 1", c.Value())
	}
	// A comfortable budget is admitted.
	release, err := l.Acquire(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	release()
}

func TestTryAcquire(t *testing.T) {
	l := NewLimiter(Config{Stage: "t", MaxInflight: 1})
	r1, ok := l.TryAcquire()
	if !ok {
		t.Fatal("empty limiter refused TryAcquire")
	}
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("full limiter admitted TryAcquire")
	}
	r1()
	r2, ok := l.TryAcquire()
	if !ok {
		t.Fatal("freed limiter refused TryAcquire")
	}
	r2()
}

func TestEstimatorEWMA(t *testing.T) {
	var e Estimator
	if e.Estimate() != 0 {
		t.Fatal("fresh estimator has an estimate")
	}
	e.Observe(80 * time.Millisecond)
	if got := e.Estimate(); got != 80*time.Millisecond {
		t.Fatalf("first observation = %v, want 80ms", got)
	}
	// Repeated larger observations pull the estimate upward monotonically.
	prev := e.Estimate()
	for i := 0; i < 64; i++ {
		e.Observe(160 * time.Millisecond)
		cur := e.Estimate()
		if cur < prev {
			t.Fatalf("estimate regressed: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev < 150*time.Millisecond || prev > 160*time.Millisecond {
		t.Fatalf("estimate after convergence = %v, want ~160ms", prev)
	}
}

func TestRegisterMetricsAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	base := TotalShed()
	l := NewLimiter(Config{Stage: "agg", MaxInflight: 1, MaxQueue: -1})
	r, err := l.Acquire(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(time.Time{}); !IsOverload(err) {
		t.Fatalf("err = %v, want overload", err)
	}
	r()
	if TotalShed() != base+1 {
		t.Fatalf("TotalShed = %d, want %d", TotalShed(), base+1)
	}
	degBase := TotalDegraded()
	MarkDegraded()
	if TotalDegraded() != degBase+1 {
		t.Fatalf("TotalDegraded = %d, want %d", TotalDegraded(), degBase+1)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Counters["overload.shed"]; !ok {
		t.Fatal("registry snapshot missing overload.shed")
	}
	if _, ok := snap.Counters["overload.degraded"]; !ok {
		t.Fatal("registry snapshot missing overload.degraded")
	}
	if _, ok := snap.Gauges["overload.queue_wait_p99_ns"]; !ok {
		t.Fatal("registry snapshot missing overload.queue_wait_p99_ns")
	}
}
