// Package deploy loads the shared cluster configuration used by the
// multi-process binaries (cmd/helios-broker, -sampler, -server, -frontend).
// Every process loads the same JSON file and derives the identical schema
// and decomposed query plans, so no runtime plan distribution is needed —
// Helios queries are fixed at deployment time because the GNN model's
// sampling pattern is fixed by training (§1).
package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"helios/internal/graph"
	"helios/internal/query"
)

// File is the on-disk JSON configuration.
type File struct {
	// Samplers (M) and Servers (N).
	Samplers int `json:"samplers"`
	Servers  int `json:"servers"`
	// Replicas is how many interchangeable serving workers cover each
	// serving partition (the frontend fails over between them). 0 or 1
	// means no replication.
	Replicas int `json:"replicas,omitempty"`
	// VertexTypes declares the schema's vertex type names in ID order.
	VertexTypes []string `json:"vertexTypes"`
	// EdgeTypes declares typed edges.
	EdgeTypes []EdgeType `json:"edgeTypes"`
	// Queries are DSL strings (Fig. 1 syntax); query ID = index.
	Queries []string `json:"queries"`
	// TTLSeconds expires stale state; 0 disables.
	TTLSeconds int `json:"ttlSeconds"`
	// Overload holds the deployment's admission-control defaults; binaries
	// may override each knob with their flags.
	Overload OverloadFile `json:"overload,omitempty"`
}

// OverloadFile is the deployment-wide overload policy (see
// internal/overload): end-to-end deadlines, admission bounds, ingestion
// backpressure, and graceful degradation. Zero values disable each bound.
type OverloadFile struct {
	// RequestTimeoutMS is the frontend's end-to-end deadline budget per
	// sampling request, in milliseconds.
	RequestTimeoutMS int `json:"requestTimeoutMs,omitempty"`
	// MaxInflight / MaxQueue bound admitted and admission-queued sampling
	// requests at the frontend and each serving worker.
	MaxInflight int `json:"maxInflight,omitempty"`
	MaxQueue    int `json:"maxQueue,omitempty"`
	// MaxIngestLag sheds ingestion once a partition's unconsumed updates
	// backlog exceeds this bound (enforced at the frontend and the broker).
	MaxIngestLag int64 `json:"maxIngestLag,omitempty"`
	// Degrade lets saturated serving workers answer from the cache inline
	// (results tagged degraded) instead of shedding outright.
	Degrade bool `json:"degrade,omitempty"`
}

// EdgeType is one schema edge declaration.
type EdgeType struct {
	Name string `json:"name"`
	Src  string `json:"src"`
	Dst  string `json:"dst"`
}

// Config is the derived runtime configuration.
type Config struct {
	File    File
	Schema  *graph.Schema
	Queries []query.Query
	Plans   []*query.Plan
	TTL     time.Duration
}

// Load reads and derives a configuration from path.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return Parse(data)
}

// Parse derives a configuration from JSON bytes.
func Parse(data []byte) (*Config, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("deploy: parse config: %w", err)
	}
	if f.Samplers < 1 || f.Servers < 1 {
		return nil, fmt.Errorf("deploy: samplers and servers must be ≥ 1")
	}
	if f.Replicas < 0 {
		return nil, fmt.Errorf("deploy: replicas must be ≥ 0")
	}
	if f.Replicas == 0 {
		f.Replicas = 1
	}
	if len(f.Queries) == 0 {
		return nil, fmt.Errorf("deploy: at least one query is required")
	}
	cfg := &Config{File: f, Schema: graph.NewSchema(), TTL: time.Duration(f.TTLSeconds) * time.Second}
	for _, name := range f.VertexTypes {
		cfg.Schema.AddVertexType(name)
	}
	for _, et := range f.EdgeTypes {
		src, ok := cfg.Schema.VertexTypeID(et.Src)
		if !ok {
			return nil, fmt.Errorf("deploy: edge %q references unknown vertex type %q", et.Name, et.Src)
		}
		dst, ok := cfg.Schema.VertexTypeID(et.Dst)
		if !ok {
			return nil, fmt.Errorf("deploy: edge %q references unknown vertex type %q", et.Name, et.Dst)
		}
		cfg.Schema.AddEdgeType(et.Name, src, dst)
	}
	for i, src := range f.Queries {
		q, err := query.Parse(src, cfg.Schema)
		if err != nil {
			return nil, fmt.Errorf("deploy: query %d: %w", i, err)
		}
		q.Name = fmt.Sprintf("q%d", i)
		plan, err := query.Decompose(query.ID(i), q, cfg.Schema)
		if err != nil {
			return nil, fmt.Errorf("deploy: query %d: %w", i, err)
		}
		cfg.Queries = append(cfg.Queries, q)
		cfg.Plans = append(cfg.Plans, plan)
	}
	return cfg, nil
}

// EdgeRouting returns, per edge type, whether Out/In-keyed routing is
// needed by any registered hop (the frontend's update routing rule).
func (c *Config) EdgeRouting() map[graph.EdgeType][2]bool {
	dirs := make(map[graph.EdgeType][2]bool)
	for _, plan := range c.Plans {
		for _, oh := range plan.OneHops {
			d := dirs[oh.Edge]
			if oh.Dir == graph.In {
				d[1] = true
			} else {
				d[0] = true
			}
			dirs[oh.Edge] = d
		}
	}
	return dirs
}
