package deploy

import (
	"os"
	"path/filepath"
	"testing"
)

const testConfig = `{
  "samplers": 2,
  "servers": 2,
  "vertexTypes": ["User", "Item"],
  "edgeTypes": [
    {"name": "Click", "src": "User", "dst": "Item"},
    {"name": "CoPurchase", "src": "Item", "dst": "Item"}
  ],
  "queries": [
    "g.V('User').outV('Click').sample(2).by('TopK').outV('CoPurchase').sample(2).by('TopK')"
  ]
}`

func TestParse(t *testing.T) {
	cfg, err := Parse([]byte(testConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.File.Samplers != 2 || cfg.File.Servers != 2 {
		t.Fatal("sizes wrong")
	}
	if len(cfg.Plans) != 1 || len(cfg.Plans[0].OneHops) != 2 {
		t.Fatal("plan wrong")
	}
	if cfg.Schema.NumVertexTypes() != 2 || cfg.Schema.NumEdgeTypes() != 2 {
		t.Fatal("schema wrong")
	}
	routing := cfg.EdgeRouting()
	if len(routing) != 2 {
		t.Fatalf("routing = %v", routing)
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad json":        `{`,
		"no queries":      `{"samplers":1,"servers":1,"vertexTypes":["A"],"queries":[]}`,
		"zero samplers":   `{"samplers":0,"servers":1,"queries":["x"]}`,
		"bad edge src":    `{"samplers":1,"servers":1,"vertexTypes":["A"],"edgeTypes":[{"name":"E","src":"Z","dst":"A"}],"queries":["x"]}`,
		"bad edge dst":    `{"samplers":1,"servers":1,"vertexTypes":["A"],"edgeTypes":[{"name":"E","src":"A","dst":"Z"}],"queries":["x"]}`,
		"unparsable dsl":  `{"samplers":1,"servers":1,"vertexTypes":["A"],"queries":["garbage"]}`,
		"type mismatch q": `{"samplers":1,"servers":1,"vertexTypes":["A","B"],"edgeTypes":[{"name":"E","src":"A","dst":"B"}],"queries":["g.V('B').outV('E').sample(2)"]}`,
	} {
		if _, err := Parse([]byte(src)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}
