// Package faultpoint provides named, deterministic failure-injection
// hooks for tests and chaos drills. Production code calls Inject (or
// Dropped) at a named point; by default both are a single atomic load
// and do nothing. Tests — or a binary started with -faultpoints — arm a
// point with a mode:
//
//	error  — Inject returns ErrInjected (or a custom error)
//	delay  — Inject sleeps for a fixed duration, then returns nil
//	drop   — Dropped reports true, telling the call site to silently
//	         discard the operation (e.g. swallow a response write)
//
// Every mode carries a fire budget: the point triggers for the next N
// calls and then disarms itself, so "error-once" failures are expressed
// as ErrorN(name, 1) and a flaky-forever link as count < 0. All state is
// process-global and guarded by one mutex; the arming API is intended
// for test setup and main(), not hot paths.
//
// The catalogue of points wired into the tree lives in DESIGN.md
// ("Fault tolerance & operations"). Names follow the metric convention:
// "rpc.dial", "mq.append", "kvstore.run.write", ...
package faultpoint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by armed error points.
var ErrInjected = errors.New("faultpoint: injected failure")

type mode uint8

const (
	modeError mode = iota + 1
	modeDelay
	modeDrop
)

type point struct {
	mode mode
	// remaining is the fire budget: >0 counts down per trigger, <0
	// means fire forever until disarmed.
	remaining int
	delay     time.Duration
	err       error
	hits      int64
}

var (
	// armedCount gates the hot path: Inject/Dropped return immediately
	// unless at least one point has a nonzero budget.
	armedCount atomic.Int32

	mu     sync.Mutex
	points = map[string]*point{}
)

// Inject triggers the named point if armed. Error points return their
// error, delay points sleep and return nil, drop points are a no-op here
// (call sites that can discard work check Dropped instead). Unarmed or
// exhausted points return nil.
func Inject(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	if p == nil || p.remaining == 0 || p.mode == modeDrop {
		mu.Unlock()
		return nil
	}
	fire(p)
	m, d, err := p.mode, p.delay, p.err
	mu.Unlock()
	if m == modeDelay {
		time.Sleep(d)
		return nil
	}
	return err
}

// Dropped reports whether the named point is armed in drop mode and
// consumes one fire from its budget. Call sites use it to silently
// discard an operation (a response write, a queue record).
func Dropped(name string) bool {
	if armedCount.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil || p.remaining == 0 || p.mode != modeDrop {
		return false
	}
	fire(p)
	return true
}

// fire consumes one unit of budget. Callers hold mu.
func fire(p *point) {
	p.hits++
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			armedCount.Add(-1)
		}
	}
}

// arm installs (or replaces) a point. Callers hold mu.
func arm(name string, p *point) {
	if old := points[name]; old != nil && old.remaining != 0 {
		armedCount.Add(-1)
	}
	points[name] = p
	if p.remaining != 0 {
		armedCount.Add(1)
	}
}

// ErrorN arms name to return ErrInjected for the next n calls
// (n < 0: every call until disarmed).
func ErrorN(name string, n int) { ErrorWith(name, n, ErrInjected) }

// ErrorOnce arms name to fail exactly the next call.
func ErrorOnce(name string) { ErrorWith(name, 1, ErrInjected) }

// ErrorWith arms name to return err for the next n calls.
func ErrorWith(name string, n int, err error) {
	mu.Lock()
	defer mu.Unlock()
	arm(name, &point{mode: modeError, remaining: n, err: err})
}

// Delay arms name to sleep d on each of the next n calls.
func Delay(name string, n int, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	arm(name, &point{mode: modeDelay, remaining: n, delay: d})
}

// Drop arms name so Dropped reports true for the next n calls.
func Drop(name string, n int) {
	mu.Lock()
	defer mu.Unlock()
	arm(name, &point{mode: modeDrop, remaining: n})
}

// Disarm removes the named point (its hit count is forgotten).
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		if p.remaining != 0 {
			armedCount.Add(-1)
		}
		delete(points, name)
	}
}

// Reset removes every point. Tests that arm points must defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name, p := range points {
		if p.remaining != 0 {
			armedCount.Add(-1)
		}
		delete(points, name)
	}
}

// Hits returns how many times the named point has triggered since it was
// last armed.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// ArmSpec arms points from a comma-separated flag value, e.g.
//
//	-faultpoints "mq.append=error:3,rpc.dial=delay:50ms:10,rpc.server.write=drop"
//
// Each entry is name=mode[:arg[:count]]. Modes:
//
//	error[:N]        fail the next N calls (default 1, "*" = forever)
//	delay:DUR[:N]    sleep DUR on the next N calls (default forever)
//	drop[:N]         drop the next N operations (default 1, "*" = forever)
func ArmSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad entry %q (want name=mode[:arg])", entry)
		}
		parts := strings.Split(rest, ":")
		switch parts[0] {
		case "error":
			n, err := specCount(parts, 1, 1)
			if err != nil {
				return fmt.Errorf("faultpoint: %q: %v", entry, err)
			}
			ErrorN(name, n)
		case "delay":
			if len(parts) < 2 {
				return fmt.Errorf("faultpoint: %q: delay needs a duration", entry)
			}
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return fmt.Errorf("faultpoint: %q: %v", entry, err)
			}
			n, err := specCount(parts, 2, -1)
			if err != nil {
				return fmt.Errorf("faultpoint: %q: %v", entry, err)
			}
			Delay(name, n, d)
		case "drop":
			n, err := specCount(parts, 1, 1)
			if err != nil {
				return fmt.Errorf("faultpoint: %q: %v", entry, err)
			}
			Drop(name, n)
		default:
			return fmt.Errorf("faultpoint: %q: unknown mode %q", entry, parts[0])
		}
	}
	return nil
}

// specCount parses the optional trailing count of an ArmSpec entry.
func specCount(parts []string, idx, def int) (int, error) {
	if len(parts) <= idx {
		return def, nil
	}
	if parts[idx] == "*" {
		return -1, nil
	}
	n, err := strconv.Atoi(parts[idx])
	if err != nil {
		return 0, fmt.Errorf("bad count %q", parts[idx])
	}
	return n, nil
}
