package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	defer Reset()
	if err := Inject("nope"); err != nil {
		t.Fatalf("unarmed Inject = %v", err)
	}
	if Dropped("nope") {
		t.Fatal("unarmed Dropped = true")
	}
}

func TestErrorBudget(t *testing.T) {
	defer Reset()
	ErrorN("p", 2)
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first = %v", err)
	}
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second = %v", err)
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("exhausted = %v", err)
	}
	if got := Hits("p"); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestErrorOnceAndCustomError(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	ErrorWith("p", 1, boom)
	if err := Inject("p"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("second = %v", err)
	}
}

func TestForeverUntilDisarm(t *testing.T) {
	defer Reset()
	ErrorN("p", -1)
	for i := 0; i < 5; i++ {
		if Inject("p") == nil {
			t.Fatal("forever point stopped firing")
		}
	}
	Disarm("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("after disarm = %v", err)
	}
}

func TestDrop(t *testing.T) {
	defer Reset()
	Drop("p", 1)
	// Error-style Inject must not consume a drop point.
	if err := Inject("p"); err != nil {
		t.Fatalf("Inject on drop point = %v", err)
	}
	if !Dropped("p") {
		t.Fatal("first Dropped = false")
	}
	if Dropped("p") {
		t.Fatal("exhausted Dropped = true")
	}
}

func TestDelay(t *testing.T) {
	defer Reset()
	Delay("p", 1, 30*time.Millisecond)
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("delay Inject = %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("delay not applied")
	}
	start = time.Now()
	if err := Inject("p"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("exhausted delay still sleeping")
	}
}

func TestArmSpec(t *testing.T) {
	defer Reset()
	err := ArmSpec("a=error:2, b=delay:10ms:1 ,c=drop,d=error:*")
	if err != nil {
		t.Fatal(err)
	}
	if Inject("a") == nil || Inject("a") == nil || Inject("a") != nil {
		t.Fatal("a budget wrong")
	}
	start := time.Now()
	if Inject("b") != nil {
		t.Fatal("b should delay, not error")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("b delay not applied")
	}
	if !Dropped("c") || Dropped("c") {
		t.Fatal("c drop budget wrong")
	}
	for i := 0; i < 10; i++ {
		if Inject("d") == nil {
			t.Fatal("d should fire forever")
		}
	}
}

func TestArmSpecErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"noequals",
		"a=wat",
		"a=delay",
		"a=delay:xyz",
		"a=error:zz",
	} {
		if err := ArmSpec(spec); err == nil {
			t.Fatalf("ArmSpec(%q) accepted", spec)
		}
	}
	// Empty entries are tolerated.
	if err := ArmSpec(""); err != nil {
		t.Fatal(err)
	}
}

func TestRearmReplacesBudget(t *testing.T) {
	defer Reset()
	ErrorN("p", 1)
	if Inject("p") == nil {
		t.Fatal("want error")
	}
	ErrorN("p", 1)
	if Inject("p") == nil {
		t.Fatal("rearmed point should fire")
	}
	if Inject("p") != nil {
		t.Fatal("rearmed budget should be fresh, not cumulative")
	}
}
